//! Scan depth: how many rank-ordered tuples the algorithms must examine.
//!
//! Theorem 2 of the paper gives a stopping condition for the sequential scan
//! of tuples in rank order: once the accumulated probability mass μ of the
//! higher-ranked tuples (excluding the current tuple's own ME group) reaches
//!
//! ```text
//! μ ≥ k + ln(1/pτ) + sqrt(ln²(1/pτ) + 2·k·ln(1/pτ)) + 1
//! ```
//!
//! no tuple from that point on can be in the top-k with probability pτ or
//! more, and consequently no k-tuple vector with probability ≥ pτ is missed.
//! The scan always stops at the end of a tie group, because a tie group is
//! either entirely needed or entirely not needed.
//!
//! The stopping condition is implemented **incrementally** by [`ScanGate`]:
//! the gate is consulted once per streamed tuple, accumulates μ as the scan
//! advances, and closes exactly at the position the batch formula would
//! return. This is what fuses Theorem 2 *into* the scan — the streaming
//! executor ([`crate::scan`]) asks the gate before accepting each tuple and
//! never reads past the bound. The batch [`scan_depth`] function is now a
//! thin wrapper running a gate over a materialized table.

use std::collections::HashMap;

use ttk_uncertain::{Error, GroupKey, Result, UncertainTable};

/// The right-hand side of the Theorem 2 inequality.
///
/// `k` is the query size and `p_tau` the probability threshold below which
/// top-k vectors may be ignored.
pub fn stopping_threshold(k: usize, p_tau: f64) -> f64 {
    let k = k as f64;
    let l = (1.0 / p_tau).ln();
    k + l + (l * l + 2.0 * k * l).sqrt() + 1.0
}

/// The incremental Theorem-2 stopping condition.
///
/// A gate is consulted once per rank-ordered tuple via [`ScanGate::admit`].
/// It tracks the total membership mass seen so far and the per-ME-group
/// shares of that mass, so the quantity μ of Theorem 2 (mass of the
/// higher-ranked tuples *excluding the tuple's own group*) is available in
/// O(1) per tuple. Tie groups are honoured exactly like the batch formula:
///
/// * when the condition first holds at the **first tuple of a tie group**,
///   the gate closes before that tuple (the whole group is unneeded);
/// * when it first holds **inside** a tie group, the remainder of that group
///   is still admitted (a tie group is kept or dropped as a unit) and the
///   gate closes at the next score change.
///
/// The number of admitted tuples therefore equals [`scan_depth`] of the same
/// stream, while the consumer reads at most one tuple past the bound (the
/// look-ahead that observes the closing score change).
#[derive(Debug, Clone)]
pub struct ScanGate {
    threshold: f64,
    total_mass: f64,
    group_mass: HashMap<u64, f64>,
    last_score: Option<f64>,
    stop_after_tie_group: bool,
    closed: bool,
    admitted: usize,
    meter: Option<GateMeter>,
}

/// A shared, lock-free view of a [`ScanGate`]'s accumulated mass: the gate
/// publishes after every admitted tuple, and any number of clones — one per
/// remote connection, possibly on prefetch producer threads — read the
/// latest value to push bound updates to shard servers.
#[derive(Debug, Clone, Default)]
pub struct GateMeter(std::sync::Arc<std::sync::atomic::AtomicU64>);

impl GateMeter {
    /// A meter reading `0.0` until a gate publishes into it.
    pub fn new() -> Self {
        GateMeter::default()
    }

    /// Publishes the gate's accumulated mass.
    pub fn publish(&self, mass: f64) {
        self.0
            .store(mass.to_bits(), std::sync::atomic::Ordering::Relaxed);
    }

    /// The most recently published accumulated mass.
    pub fn current(&self) -> f64 {
        f64::from_bits(self.0.load(std::sync::atomic::Ordering::Relaxed))
    }
}

impl ScanGate {
    /// A gate implementing the Theorem-2 bound for query size `k` and
    /// probability threshold `p_tau`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] when `k == 0` or `p_tau` is not in
    /// `(0, 1)`.
    pub fn new(k: usize, p_tau: f64) -> Result<Self> {
        let mut gate = Self::with_threshold(f64::INFINITY);
        gate.reset(k, p_tau)?;
        Ok(gate)
    }

    /// A gate that never closes — used by consumers that need the entire
    /// stream (exhaustive enumeration, U-Topk) while still going through the
    /// same scan machinery.
    pub fn open() -> Self {
        Self::with_threshold(f64::INFINITY)
    }

    fn with_threshold(threshold: f64) -> Self {
        ScanGate {
            threshold,
            total_mass: 0.0,
            group_mass: HashMap::new(),
            last_score: None,
            stop_after_tie_group: false,
            closed: false,
            admitted: 0,
            meter: None,
        }
    }

    /// Attaches (or, with `None`, detaches) the meter the gate publishes its
    /// accumulated mass into after every admitted tuple. Resetting the gate
    /// detaches any meter, so a long-lived executor never publishes one
    /// query's mass into another query's meter.
    pub fn set_meter(&mut self, meter: Option<GateMeter>) {
        if let Some(meter) = &meter {
            meter.publish(self.total_mass);
        }
        self.meter = meter;
    }

    /// Re-arms the gate for a fresh scan with the given parameters, keeping
    /// the group-mass table's allocation. This is what lets a long-lived
    /// [`crate::query::Executor`] serve many queries without reallocating.
    ///
    /// # Errors
    ///
    /// As [`ScanGate::new`].
    pub fn reset(&mut self, k: usize, p_tau: f64) -> Result<()> {
        if k == 0 {
            return Err(Error::InvalidParameter("k must be at least 1".into()));
        }
        if !(p_tau > 0.0 && p_tau < 1.0) {
            return Err(Error::InvalidParameter(format!(
                "probability threshold pτ must be in (0, 1), got {p_tau}"
            )));
        }
        self.reset_with_threshold(stopping_threshold(k, p_tau));
        Ok(())
    }

    /// Re-arms the gate as an open (never-closing) gate, keeping allocations.
    pub fn reset_open(&mut self) {
        self.reset_with_threshold(f64::INFINITY);
    }

    fn reset_with_threshold(&mut self, threshold: f64) {
        self.threshold = threshold;
        self.total_mass = 0.0;
        self.group_mass.clear();
        self.last_score = None;
        self.stop_after_tie_group = false;
        self.closed = false;
        self.admitted = 0;
        self.meter = None;
    }

    /// Decides whether the next rank-ordered tuple is part of the Theorem-2
    /// prefix. Returns `false` once the gate has closed; from then on every
    /// call returns `false`.
    pub fn admit(&mut self, score: f64, prob: f64, group: GroupKey) -> bool {
        if self.closed {
            return false;
        }
        let starts_tie_group = self.last_score != Some(score);
        if starts_tie_group && self.stop_after_tie_group {
            self.closed = true;
            return false;
        }
        let own_mass = match group {
            GroupKey::Shared(key) => self.group_mass.get(&key).copied().unwrap_or(0.0),
            GroupKey::Independent => 0.0,
        };
        let mu = self.total_mass - own_mass;
        if mu >= self.threshold {
            if starts_tie_group {
                // The whole tie group is unneeded.
                self.closed = true;
                return false;
            }
            // Mid-group trigger: keep the rest of the group, then stop.
            self.stop_after_tie_group = true;
        }
        self.total_mass += prob;
        if let GroupKey::Shared(key) = group {
            *self.group_mass.entry(key).or_insert(0.0) += prob;
        }
        self.last_score = Some(score);
        self.admitted += 1;
        if let Some(meter) = &self.meter {
            meter.publish(self.total_mass);
        }
        true
    }

    /// True once the gate has rejected a tuple.
    pub fn is_closed(&self) -> bool {
        self.closed
    }

    /// Number of tuples admitted so far (the scan depth once closed).
    pub fn admitted(&self) -> usize {
        self.admitted
    }

    /// The accumulated membership mass of the admitted tuples.
    pub fn accumulated_mass(&self) -> f64 {
        self.total_mass
    }
}

/// The **server-side** conservative stopping bound for scan-gate pushdown:
/// a shard server that sees only its own rank-ordered shard decides when no
/// later local tuple can possibly be inside the merge-side Theorem-2 prefix,
/// and stops shipping.
///
/// Two triggers feed the decision, both checked per offered tuple:
///
/// * **local mass** — the shard's own accumulated μ (total mass minus the
///   tuple's own ME-group share) already reaches the global threshold. Since
///   the global rank-ordered prefix above any tuple is a superset of the
///   local one, global μ ≥ local μ, so the merge-side gate's condition holds
///   wherever the local one does;
/// * **remote mass** — the client's latest bound update carries the
///   merge-side gate's accumulated mass `M` ([`GateMeter`]); the merge-side
///   μ of any not-yet-shipped tuple is at least `M − 1` (an ME group holds
///   at most total mass 1), so `M − 1 ≥ threshold` proves the condition for
///   everything still unshipped.
///
/// On either trigger the gate stays **deliberately one tie group behind**
/// the client gate: it admits the triggering tuple *and the remainder of its
/// local score group*, closing only at the next score change. This is what
/// makes the bound conservative at group boundaries — the merge-side gate
/// may trigger mid-group at a score level that spans shards, in which case
/// the whole global tie group (including this shard's share of it) is still
/// needed. Every unshipped tuple then sits strictly below the score level at
/// which the client gate provably closes, so the pushdown stream contains
/// the full Theorem-2 prefix and the merged result is bit-identical to a
/// full replay.
#[derive(Debug, Clone)]
pub struct ShardScanGate {
    threshold: f64,
    total_mass: f64,
    group_mass: HashMap<u64, f64>,
    last_score: Option<f64>,
    finish_tie_group: bool,
    closed: bool,
    admitted: usize,
    remote_mass: f64,
}

impl ShardScanGate {
    /// A gate enforcing the conservative per-shard bound for query size `k`
    /// and probability threshold `p_tau` (the same global threshold the
    /// merge-side [`ScanGate`] uses).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] when `k == 0` or `p_tau` is not
    /// in `(0, 1)`.
    pub fn new(k: usize, p_tau: f64) -> Result<Self> {
        if k == 0 {
            return Err(Error::InvalidParameter("k must be at least 1".into()));
        }
        if !(p_tau > 0.0 && p_tau < 1.0) {
            return Err(Error::InvalidParameter(format!(
                "probability threshold pτ must be in (0, 1), got {p_tau}"
            )));
        }
        Ok(ShardScanGate {
            threshold: stopping_threshold(k, p_tau),
            total_mass: 0.0,
            group_mass: HashMap::new(),
            last_score: None,
            finish_tie_group: false,
            closed: false,
            admitted: 0,
            remote_mass: 0.0,
        })
    }

    /// Folds in the latest client bound update (the merge-side gate's
    /// accumulated mass). Stale or out-of-order updates are harmless: the
    /// mass only ever grows, so the gate keeps the largest value seen.
    pub fn update_remote_mass(&mut self, mass: f64) {
        if mass > self.remote_mass {
            self.remote_mass = mass;
        }
    }

    /// Decides whether the next rank-ordered shard tuple can still be part
    /// of the merge-side Theorem-2 prefix. Returns `false` once the gate has
    /// closed; from then on every call returns `false`.
    pub fn admit(&mut self, score: f64, prob: f64, group: GroupKey) -> bool {
        if self.closed {
            return false;
        }
        let starts_tie_group = self.last_score != Some(score);
        if starts_tie_group && self.finish_tie_group {
            self.closed = true;
            return false;
        }
        if !self.finish_tie_group {
            let own_mass = match group {
                GroupKey::Shared(key) => self.group_mass.get(&key).copied().unwrap_or(0.0),
                GroupKey::Independent => 0.0,
            };
            let local_mu = self.total_mass - own_mass;
            if local_mu >= self.threshold || self.remote_mass - 1.0 >= self.threshold {
                // Admit this tuple and the rest of its score group, then
                // close at the next score change (see the type-level doc).
                self.finish_tie_group = true;
            }
        }
        self.total_mass += prob;
        if let GroupKey::Shared(key) = group {
            *self.group_mass.entry(key).or_insert(0.0) += prob;
        }
        self.last_score = Some(score);
        self.admitted += 1;
        true
    }

    /// True once the gate has rejected a tuple.
    pub fn is_closed(&self) -> bool {
        self.closed
    }

    /// Number of tuples admitted so far.
    pub fn admitted(&self) -> usize {
        self.admitted
    }
}

/// Computes the scan depth `n` for a table: the number of highest-ranked
/// tuples that must be considered so that no top-k vector with probability at
/// least `p_tau` is missed.
///
/// Returns the table length when the stopping condition is never met.
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] when `k == 0` or `p_tau` is not in
/// `(0, 1)`.
pub fn scan_depth(table: &UncertainTable, k: usize, p_tau: f64) -> Result<usize> {
    let mut gate = ScanGate::new(k, p_tau)?;
    for pos in 0..table.len() {
        let tuple = table.tuple(pos);
        let group = if table.group_members(pos).len() > 1 {
            GroupKey::Shared(table.group_index(pos) as u64)
        } else {
            GroupKey::Independent
        };
        if !gate.admit(tuple.score(), tuple.prob(), group) {
            break;
        }
    }
    Ok(gate.admitted())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ttk_uncertain::UncertainTable;

    fn uniform_table(n: usize, prob: f64) -> UncertainTable {
        UncertainTable::new(
            (0..n)
                .map(|i| {
                    ttk_uncertain::UncertainTuple::new(i as u64, (n - i) as f64, prob).unwrap()
                })
                .collect(),
            Vec::new(),
        )
        .unwrap()
    }

    /// The original batch formulation of Theorem 2 (materialize, then
    /// truncate), kept as the oracle the incremental gate is tested against.
    fn scan_depth_batch(table: &UncertainTable, k: usize, p_tau: f64) -> Result<usize> {
        if k == 0 {
            return Err(Error::InvalidParameter("k must be at least 1".into()));
        }
        if !(p_tau > 0.0 && p_tau < 1.0) {
            return Err(Error::InvalidParameter(format!(
                "probability threshold pτ must be in (0, 1), got {p_tau}"
            )));
        }
        let threshold = stopping_threshold(k, p_tau);
        for pos in 0..table.len() {
            if table.mu(pos) >= threshold {
                return Ok(if pos == 0 {
                    0
                } else {
                    table.tie_group_end(pos - 1)
                });
            }
        }
        Ok(table.len())
    }

    fn assert_gate_matches_batch(table: &UncertainTable, k: usize, p_tau: f64) {
        let incremental = scan_depth(table, k, p_tau).unwrap();
        let batch = scan_depth_batch(table, k, p_tau).unwrap();
        assert_eq!(incremental, batch, "k={k}, p_tau={p_tau}");
    }

    #[test]
    fn threshold_grows_with_k_and_shrinks_with_p_tau() {
        assert!(stopping_threshold(10, 0.001) < stopping_threshold(20, 0.001));
        assert!(stopping_threshold(10, 0.001) > stopping_threshold(10, 0.01));
        // Sanity: threshold is always at least k + 1.
        for k in [1usize, 5, 50] {
            assert!(stopping_threshold(k, 0.001) > k as f64 + 1.0);
        }
    }

    #[test]
    fn rejects_bad_parameters() {
        let t = uniform_table(10, 0.5);
        assert!(scan_depth(&t, 0, 0.001).is_err());
        assert!(scan_depth(&t, 2, 0.0).is_err());
        assert!(scan_depth(&t, 2, 1.0).is_err());
        assert!(ScanGate::new(0, 0.001).is_err());
        assert!(ScanGate::new(2, -1.0).is_err());
    }

    #[test]
    fn small_tables_are_fully_scanned() {
        let t = uniform_table(20, 0.5);
        assert_eq!(scan_depth(&t, 5, 0.001).unwrap(), 20);
    }

    #[test]
    fn depth_is_bounded_and_grows_with_k() {
        let t = uniform_table(2000, 0.5);
        let d5 = scan_depth(&t, 5, 0.001).unwrap();
        let d20 = scan_depth(&t, 20, 0.001).unwrap();
        let d60 = scan_depth(&t, 60, 0.001).unwrap();
        assert!(d5 < d20 && d20 < d60, "{d5} {d20} {d60}");
        assert!(d60 < 2000);
        // The depth must exceed k (we need at least k tuples).
        assert!(d5 > 5 && d20 > 20 && d60 > 60);
    }

    #[test]
    fn depth_grows_when_p_tau_shrinks() {
        let t = uniform_table(2000, 0.5);
        let loose = scan_depth(&t, 10, 0.01).unwrap();
        let tight = scan_depth(&t, 10, 0.0001).unwrap();
        assert!(tight >= loose);
    }

    #[test]
    fn certain_tuples_need_roughly_k_plus_threshold_tuples() {
        // With probability-1 tuples, μ at position i is exactly i, so the
        // depth is close to the threshold itself.
        let t = uniform_table(1000, 1.0);
        let d = scan_depth(&t, 10, 0.001).unwrap();
        assert_eq!(d, stopping_threshold(10, 0.001).ceil() as usize);
    }

    #[test]
    fn stops_at_tie_group_boundary() {
        // 100 certain tuples, all with the same score: the stopping condition
        // triggers inside the tie group, so the whole group must be kept.
        let t = UncertainTable::new(
            (0..100)
                .map(|i| ttk_uncertain::UncertainTuple::new(i as u64, 42.0, 1.0).unwrap())
                .collect(),
            Vec::new(),
        )
        .unwrap();
        assert_eq!(scan_depth(&t, 3, 0.01).unwrap(), 100);
    }

    #[test]
    fn me_groups_inflate_depth() {
        // Tuples that are mutually exclusive with many others contribute less
        // μ mass (their own group is excluded), so the scan goes deeper.
        let independent = uniform_table(3000, 0.25);
        let mut builder = UncertainTable::builder();
        let mut rules: Vec<Vec<u64>> = Vec::new();
        for i in 0..3000u64 {
            builder.push(ttk_uncertain::UncertainTuple::new(i, (3000 - i) as f64, 0.25).unwrap());
        }
        for chunk in 0..750u64 {
            rules.push((0..4).map(|j| chunk * 4 + j).collect());
        }
        for r in &rules {
            builder.add_me_rule(r.iter().copied());
        }
        let grouped = builder.build().unwrap();
        let d_ind = scan_depth(&independent, 10, 0.001).unwrap();
        let d_grp = scan_depth(&grouped, 10, 0.001).unwrap();
        assert!(d_grp >= d_ind);
    }

    #[test]
    fn gate_agrees_with_batch_formula_across_workloads() {
        // Independent tuples at several probabilities.
        for prob in [0.1, 0.5, 1.0] {
            let t = uniform_table(1500, prob);
            for k in [1usize, 3, 10, 40] {
                for p_tau in [0.05, 1e-3, 1e-6] {
                    assert_gate_matches_batch(&t, k, p_tau);
                }
            }
        }
        // A table with large ME groups and score ties.
        let mut builder = UncertainTable::builder();
        for i in 0..1200u64 {
            // Four-way score ties; probabilities cycling through 0.10..0.25
            // (kept small so three-member ME groups stay under total mass 1).
            let score = (1200 - (i / 4) * 4) as f64;
            let prob = 0.1 + 0.05 * (i % 4) as f64;
            builder.push(ttk_uncertain::UncertainTuple::new(i, score, prob).unwrap());
        }
        for g in 0..300u64 {
            // Members spread 300 apart so groups straddle the scan bound.
            builder.add_me_rule([g, g + 300, g + 600]);
        }
        let t = builder.build().unwrap();
        for k in [1usize, 2, 5, 20] {
            for p_tau in [0.05, 1e-3, 1e-6] {
                assert_gate_matches_batch(&t, k, p_tau);
            }
        }
    }

    #[test]
    fn open_gate_never_closes() {
        let t = uniform_table(500, 1.0);
        let mut gate = ScanGate::open();
        for pos in 0..t.len() {
            assert!(gate.admit(
                t.tuple(pos).score(),
                t.tuple(pos).prob(),
                GroupKey::Independent
            ));
        }
        assert!(!gate.is_closed());
        assert_eq!(gate.admitted(), 500);
        assert!((gate.accumulated_mass() - 500.0).abs() < 1e-9);
    }

    /// Runs a [`ShardScanGate`] over a whole table (as if it were one shard)
    /// with no remote updates and returns the admitted count — the
    /// deterministic local conservative bound the pushdown tests assert
    /// against.
    fn shard_bound(table: &UncertainTable, k: usize, p_tau: f64) -> usize {
        let mut gate = ShardScanGate::new(k, p_tau).unwrap();
        for pos in 0..table.len() {
            let tuple = table.tuple(pos);
            let group = if table.group_members(pos).len() > 1 {
                GroupKey::Shared(table.group_index(pos) as u64)
            } else {
                GroupKey::Independent
            };
            if !gate.admit(tuple.score(), tuple.prob(), group) {
                break;
            }
        }
        gate.admitted()
    }

    #[test]
    fn shard_gate_ships_a_superset_of_the_client_prefix() {
        let t = uniform_table(2000, 0.5);
        for k in [1usize, 5, 20] {
            for p_tau in [0.05, 1e-3] {
                let depth = scan_depth(&t, k, p_tau).unwrap();
                let bound = shard_bound(&t, k, p_tau);
                // Conservative, but bounded: at most one extra tie group
                // (here all scores are distinct, so at most one tuple).
                assert!(bound >= depth, "k={k} pτ={p_tau}: {bound} < {depth}");
                assert!(bound <= depth + 1, "k={k} pτ={p_tau}: {bound} vs {depth}");
                assert!(bound < t.len());
            }
        }
        assert!(ShardScanGate::new(0, 0.5).is_err());
        assert!(ShardScanGate::new(3, 1.0).is_err());
    }

    #[test]
    fn remote_mass_closes_the_shard_gate_after_the_current_tie_group() {
        // Low-probability local tuples never trigger locally, but a client
        // bound update above threshold + 1 stops the replay at the end of
        // the score group it lands in.
        let mut gate = ShardScanGate::new(2, 0.01).unwrap();
        assert!(gate.admit(10.0, 0.01, GroupKey::Independent));
        assert!(gate.admit(9.0, 0.01, GroupKey::Independent));
        gate.update_remote_mass(stopping_threshold(2, 0.01) + 1.5);
        // Trigger lands mid-stream: the 8.0 group is finished, 7.0 is not.
        assert!(gate.admit(8.0, 0.01, GroupKey::Independent));
        assert!(gate.admit(8.0, 0.01, GroupKey::Independent));
        assert!(!gate.admit(7.0, 0.01, GroupKey::Independent));
        assert!(gate.is_closed());
        assert_eq!(gate.admitted(), 4);
        // A stale (smaller) update never reopens anything.
        gate.update_remote_mass(0.5);
        assert!(!gate.admit(6.0, 0.01, GroupKey::Independent));
    }

    #[test]
    fn gate_meter_tracks_the_accumulated_mass() {
        let meter = GateMeter::new();
        assert_eq!(meter.current(), 0.0);
        let mut gate = ScanGate::new(3, 0.01).unwrap();
        gate.set_meter(Some(meter.clone()));
        assert!(gate.admit(5.0, 0.25, GroupKey::Independent));
        assert!(gate.admit(4.0, 0.5, GroupKey::Independent));
        assert!((meter.current() - 0.75).abs() < 1e-12);
        assert!((meter.current() - gate.accumulated_mass()).abs() < 1e-12);
        // Resetting the gate detaches the meter: the old reading survives,
        // but the next query's masses are not published into it.
        gate.reset(2, 0.5).unwrap();
        assert!(gate.admit(9.0, 1.0, GroupKey::Independent));
        assert!((meter.current() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn closed_gate_stays_closed() {
        let t = uniform_table(1000, 1.0);
        let mut gate = ScanGate::new(2, 0.01).unwrap();
        let mut admitted = 0;
        for pos in 0..t.len() {
            if gate.admit(
                t.tuple(pos).score(),
                t.tuple(pos).prob(),
                GroupKey::Independent,
            ) {
                admitted += 1;
            } else {
                break;
            }
        }
        assert!(gate.is_closed());
        assert_eq!(admitted, gate.admitted());
        // Further offers are rejected without changing the count.
        assert!(!gate.admit(0.0, 1.0, GroupKey::Independent));
        assert_eq!(gate.admitted(), admitted);
    }
}
