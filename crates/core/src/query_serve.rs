//! The query-serving layer behind `ttk serve`: whole queries ship to a
//! resident-dataset daemon, answers ship back.
//!
//! The shard fabric of [`serve`](crate::serve) / [`remote`](crate::remote)
//! moves *tuples*: every remote query replays (a Theorem-2 prefix of) the
//! shard stream and pays scan setup on the client. This module moves
//! *queries*: a daemon keeps its datasets resident (a
//! [`DatasetRegistry`]), reuses one [`Session`] per worker so cost
//! observations accumulate across connections, and consults a shared
//! [`ResultCache`] so repeated (dataset, algorithm, k, pτ) queries skip
//! execution entirely.
//!
//! Three layers live here:
//!
//! * conversions between the engine types and the v4 wire structs —
//!   [`request_for`] / [`query_from_request`] and [`answer_to_wire`] /
//!   [`answer_from_wire`]. The wire codec preserves raw IEEE-754 bits and
//!   per-line witnesses, so a decoded answer compares equal to the answer
//!   the executor produced.
//! * [`serve_query`] — one connection's server side: read the request
//!   frame (bounded by [`QueryServeOptions::request_wait`] so a stalled
//!   client cannot pin a worker forever), resolve the dataset, answer from
//!   the cache or execute, ship the result. Every failure is answered with
//!   an error frame on a best-effort basis and surfaced to the caller, which
//!   isolates it to this connection.
//! * [`RemoteQueryClient`] — the client side: dial with the same
//!   retry/backoff discipline as the shard client, send the request, decode
//!   the answer. [`RemoteQueryClient::plan`] folds the server-reported scan
//!   depth and cache outcome into a [`PlanDescription`] for
//!   `ttk explain --server --after`.
//!
//! Like the v3 pushdown handshake, the client speaks first. A v4 daemon
//! answers anything that is not a query-request frame with an error frame
//! and closes, so pre-v4 peers fail cleanly instead of hanging; a v4 client
//! pointed at a shard server decodes the unexpected hello as a clean error.
//!
//! The v5 surface widens one connection's first frame to a [`ClientRequest`]
//! — query, append, or subscribe — dispatched by [`serve_client`]:
//!
//! * appends land on a registry-resident live dataset's
//!   [`AppendLog`](crate::live::AppendLog) (optionally sealing), bump the
//!   cache generation when the epoch advances, and are acknowledged with the
//!   new watermark;
//! * subscriptions turn the connection into a push stream: the daemon
//!   evaluates the standing query at the current epoch (the baseline push),
//!   then re-evaluates whenever the epoch advances and pushes a
//!   notification + full result **only when the answer distribution
//!   actually shifted** ([`answer_hash`] compares distributions, not scan
//!   bookkeeping);
//! * results are epoch-stamped, and the daemon echoes the client's spoken
//!   protocol version, so pre-v5 clients are served byte-identical v4
//!   results.
//!
//! The v6 surface adds the **admin plane**: a [`ClientRequest::Admin`] frame
//! carries a lifecycle verb — `stats`, `register`, `unregister`, `reload`,
//! `compact` — dispatched by [`serve_client`] to [`serve_admin`], which
//! mutates the shared [`DatasetRegistry`] / [`AppendLog`](crate::live::AppendLog)
//! and answers with a human-readable report. Still client-speaks-first: a
//! server never emits a v6 byte unless the client sent one, so v5-and-older
//! peers interop byte-identically. v6 results additionally carry the
//! live-scan tail (segment count + last compaction epoch) for
//! `explain --after`.

use std::collections::hash_map::DefaultHasher;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::io::{BufReader, BufWriter};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use ttk_uncertain::wire::{
    self, AdminRequest, AdminVerb, AppendAck, AppendRequest, ClientRequest, Notification,
    QueryRequest, QueryResult, SubscribeRequest, WireTypical, WireUTopk, WIRE_VERSION_V5,
    WIRE_VERSION_V6,
};
use ttk_uncertain::{CoalescePolicy, Error, Result, ScoreDistribution, SourceTuple};

use crate::baselines::UTopkAnswer;
use crate::query::{Algorithm, QueryAnswer, TopkQuery};
use crate::registry::{CacheKey, DatasetRegistry, ResultCache};
use crate::remote::ConnectOptions;
use crate::session::{estimated_cost, estimated_scan_depth, PlanDescription, ScanPath, Session};
use crate::typical::{TypicalAnswer, TypicalSelection};

/// Wire code for an [`Algorithm`] (stable across releases — append only).
pub fn algorithm_code(algorithm: Algorithm) -> u8 {
    match algorithm {
        Algorithm::Main => 0,
        Algorithm::MainPerEnding => 1,
        Algorithm::StateExpansion => 2,
        Algorithm::KCombo => 3,
        Algorithm::Exhaustive => 4,
    }
}

/// Decodes an [`Algorithm`] wire code.
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] for an unknown code (a newer client
/// speaking to an older server).
pub fn algorithm_from_code(code: u8) -> Result<Algorithm> {
    Ok(match code {
        0 => Algorithm::Main,
        1 => Algorithm::MainPerEnding,
        2 => Algorithm::StateExpansion,
        3 => Algorithm::KCombo,
        4 => Algorithm::Exhaustive,
        other => {
            return Err(Error::InvalidParameter(format!(
                "unknown algorithm code {other} (this server knows codes 0..=4)"
            )))
        }
    })
}

/// Wire code for a [`CoalescePolicy`] (stable across releases).
pub fn coalesce_code(policy: CoalescePolicy) -> u8 {
    match policy {
        CoalescePolicy::PaperMean => 0,
        CoalescePolicy::WeightedMean => 1,
    }
}

/// Decodes a [`CoalescePolicy`] wire code.
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] for an unknown code.
pub fn coalesce_from_code(code: u8) -> Result<CoalescePolicy> {
    Ok(match code {
        0 => CoalescePolicy::PaperMean,
        1 => CoalescePolicy::WeightedMean,
        other => {
            return Err(Error::InvalidParameter(format!(
                "unknown coalesce-policy code {other} (this server knows codes 0 and 1)"
            )))
        }
    })
}

/// The wire request for `query` against the resident dataset `dataset`.
pub fn request_for(dataset: &str, query: &TopkQuery) -> QueryRequest {
    QueryRequest {
        version: WIRE_VERSION_V6,
        dataset: dataset.to_string(),
        k: query.k as u64,
        p_tau: query.p_tau,
        typical_count: query.typical_count as u64,
        max_lines: query.max_lines as u64,
        algorithm: algorithm_code(query.algorithm),
        coalesce: coalesce_code(query.coalesce_policy),
        u_topk: query.compute_u_topk,
    }
}

/// Reconstructs the engine query a request describes.
///
/// The possible-world budget (`world_limit`) is *not* part of the wire
/// request: the serving process enforces its own budget, so a remote client
/// cannot ask an exhaustive enumeration past what the server allows.
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] for unknown algorithm or
/// coalesce-policy codes (shape validation — k ≥ 1, pτ ∈ (0, 1) — already
/// happened when the frame was decoded).
pub fn query_from_request(request: &QueryRequest) -> Result<TopkQuery> {
    Ok(TopkQuery::new(request.k as usize)
        .with_p_tau(request.p_tau)
        .with_typical_count(request.typical_count as usize)
        .with_max_lines(request.max_lines as usize)
        .with_algorithm(algorithm_from_code(request.algorithm)?)
        .with_coalesce_policy(coalesce_from_code(request.coalesce)?)
        .with_u_topk(request.u_topk))
}

/// Flattens a finished answer into the wire result, tagged with whether it
/// came from the result cache. The result speaks v5 with a zero
/// epoch/generation; the serving path overwrites all three (echoing the
/// client's version, stamping the dataset epoch and cache generation).
pub fn answer_to_wire(answer: &QueryAnswer, cache_hit: bool) -> QueryResult {
    QueryResult {
        version: WIRE_VERSION_V5,
        epoch: 0,
        cache_generation: 0,
        live: false,
        live_segments: 0,
        compacted_epoch: 0,
        cache_hit,
        scan_depth: answer.scan_depth as u64,
        distribution_time_ns: answer.distribution_time.as_nanos() as u64,
        typical_time_ns: answer.typical_time.as_nanos() as u64,
        expected_distance: answer.typical.expected_distance,
        points: answer.distribution.points().to_vec(),
        typical: answer
            .typical
            .answers
            .iter()
            .map(|typical| WireTypical {
                score: typical.score,
                probability: typical.probability,
                vector: typical.vector.clone(),
            })
            .collect(),
        u_topk: answer.u_topk.as_ref().map(|u_topk| WireUTopk {
            vector: u_topk.vector.clone(),
            expansions: u_topk.expansions,
            deepest_position: u_topk.deepest_position as u64,
        }),
    }
}

/// Rebuilds the engine answer a wire result carries, plus the server's
/// cache outcome.
///
/// The distribution is reconstructed verbatim
/// ([`ScoreDistribution::from_points`]) — no re-coalescing — so the decoded
/// answer is bit-identical to what the serving process computed.
pub fn answer_from_wire(result: QueryResult) -> (QueryAnswer, bool) {
    let cache_hit = result.cache_hit;
    let answer = QueryAnswer {
        distribution: ScoreDistribution::from_points(result.points),
        typical: TypicalSelection {
            answers: result
                .typical
                .into_iter()
                .map(|typical| TypicalAnswer {
                    score: typical.score,
                    probability: typical.probability,
                    vector: typical.vector,
                })
                .collect(),
            expected_distance: result.expected_distance,
        },
        u_topk: result.u_topk.map(|u_topk| UTopkAnswer {
            vector: u_topk.vector,
            expansions: u_topk.expansions,
            deepest_position: u_topk.deepest_position as usize,
        }),
        scan_depth: result.scan_depth as usize,
        distribution_time: Duration::from_nanos(result.distribution_time_ns),
        typical_time: Duration::from_nanos(result.typical_time_ns),
    };
    (answer, cache_hit)
}

/// Knobs of [`serve_query`] / [`serve_client`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryServeOptions {
    /// How long a worker waits for the connection's request frame before
    /// giving up on the client (a stalled client holds its worker for at
    /// most this long). `Duration::ZERO` waits forever.
    pub request_wait: Duration,
    /// How long a subscription loop sleeps on the epoch condvar before
    /// re-checking its stop conditions (daemon shutdown, client
    /// disconnect). Purely a responsiveness/cost trade-off: an epoch
    /// advance wakes the loop immediately regardless.
    pub subscription_poll: Duration,
}

impl Default for QueryServeOptions {
    fn default() -> Self {
        QueryServeOptions {
            request_wait: Duration::from_secs(10),
            subscription_poll: Duration::from_millis(50),
        }
    }
}

/// What one served connection did — the daemon's per-connection log line.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryServeSummary {
    /// Registered name of the dataset queried.
    pub dataset: String,
    /// Process-unique id of that dataset (the cache-key component).
    pub dataset_id: u64,
    /// Algorithm the query selected.
    pub algorithm: Algorithm,
    /// Query size k.
    pub k: usize,
    /// Probability threshold pτ.
    pub p_tau: f64,
    /// True when the answer came from the result cache.
    pub cache_hit: bool,
    /// Scan depth of the answer that was shipped (the cold run's depth when
    /// the cache answered).
    pub scan_depth: usize,
    /// The dataset epoch the answer is pinned to (0 for static datasets).
    pub epoch: u64,
    /// The result cache's generation when the answer shipped.
    pub cache_generation: u64,
    /// Sealed segments under the live snapshot answered from (`None` for
    /// static datasets).
    pub live_segments: Option<u64>,
    /// Epoch of the live log's most recent compaction, 0 = never (`None`
    /// for static datasets).
    pub compacted_epoch: Option<u64>,
}

impl fmt::Display for QueryServeSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "query `{}` (dataset id {}, epoch {}): algorithm {:?}, k = {}, p_tau = {:e} -> cache {} (generation {}), scan depth {} tuples",
            self.dataset,
            self.dataset_id,
            self.epoch,
            self.algorithm,
            self.k,
            self.p_tau,
            if self.cache_hit { "hit" } else { "miss" },
            self.cache_generation,
            self.scan_depth,
        )?;
        if let Some(segments) = self.live_segments {
            write!(f, ", {segments} live segments")?;
        }
        if let Some(compacted) = self.compacted_epoch {
            match compacted {
                0 => write!(f, ", never compacted")?,
                epoch => write!(f, ", last compacted at epoch {epoch}")?,
            }
        }
        Ok(())
    }
}

/// Serves one query connection: decode the request, resolve the dataset,
/// answer from `cache` or execute on `session`, ship the result.
///
/// Every failure — a stalled or garbled client, an unknown dataset, an
/// execution error — is answered with a best-effort error frame and returned
/// as `Err`, so the daemon's accept loop can log it and move on without the
/// connection poisoning anything shared.
///
/// # Errors
///
/// Returns [`Error::Source`] for connection-level failures and propagates
/// dataset/execution errors as-is.
pub fn serve_query(
    stream: TcpStream,
    registry: &DatasetRegistry,
    cache: &ResultCache,
    session: &mut Session,
    options: &QueryServeOptions,
) -> Result<QueryServeSummary> {
    let wait = match options.request_wait {
        Duration::ZERO => None,
        wait => Some(wait),
    };
    stream
        .set_read_timeout(wait)
        .map_err(|e| Error::Source(format!("arming the request timeout: {e}")))?;

    let mut read_half = &stream;
    let request = match wire::read_query_request(&mut read_half) {
        Ok(request) => request,
        Err(e) => {
            let _ = wire::write_query_error(&mut &stream, &e.to_string());
            return Err(e);
        }
    };

    match serve_decoded_query(&stream, &request, registry, cache, session) {
        Ok(summary) => Ok(summary),
        Err(e) => {
            let _ = wire::write_query_error(&mut &stream, &e.to_string());
            Err(e)
        }
    }
}

/// The post-decode half of [`serve_query`], split out so every error takes
/// the same answer-with-an-error-frame exit path.
fn serve_decoded_query(
    stream: &TcpStream,
    request: &QueryRequest,
    registry: &DatasetRegistry,
    cache: &ResultCache,
    session: &mut Session,
) -> Result<QueryServeSummary> {
    let query = query_from_request(request)?;
    let dataset = registry
        .get(&request.dataset)
        .ok_or_else(|| no_such_dataset(registry, &request.dataset))?;

    let epoch = dataset.epoch();
    let key = CacheKey::new(dataset.id(), epoch, &query);
    let (answer, cache_hit) = match cache.get(&key) {
        Some(answer) => (answer, true),
        None => {
            let answer = Arc::new(session.execute(&dataset, &query)?);
            cache.insert(key, Arc::clone(&answer));
            (answer, false)
        }
    };

    // The live-scan tail for v6 results and the daemon's summary line.
    let live_meta = registry.live(&request.dataset).map(|log| {
        let snapshot = log.snapshot();
        (snapshot.segment_count() as u64, snapshot.compacted_epoch())
    });

    let cache_generation = cache.generation();
    let mut result = answer_to_wire(&answer, cache_hit);
    // Echo the client's spoken version: a v4 client gets a byte-identical
    // v4 result, a v5 client additionally gets the epoch/generation tail,
    // a v6 client additionally gets the live-scan tail.
    result.version = request.version;
    result.epoch = epoch;
    result.cache_generation = cache_generation;
    if let Some((segments, compacted)) = live_meta {
        result.live = true;
        result.live_segments = segments;
        result.compacted_epoch = compacted;
    }
    let mut writer = BufWriter::new(stream);
    wire::write_query_result(&mut writer, &result)?;

    Ok(QueryServeSummary {
        dataset: request.dataset.clone(),
        dataset_id: dataset.id(),
        algorithm: query.algorithm,
        k: query.k,
        p_tau: query.p_tau,
        cache_hit,
        scan_depth: answer.scan_depth,
        epoch,
        cache_generation,
        live_segments: live_meta.map(|(segments, _)| segments),
        compacted_epoch: live_meta.map(|(_, compacted)| compacted),
    })
}

/// The "no such dataset" refusal every request kind answers with.
fn no_such_dataset(registry: &DatasetRegistry, name: &str) -> Error {
    let resident = registry.names().join(", ");
    Error::InvalidParameter(if resident.is_empty() {
        format!("no such dataset `{name}` (no datasets are resident)")
    } else {
        format!("no such dataset `{name}`; resident datasets: {resident}")
    })
}

/// A stable fingerprint of *what a query answered* — the score
/// distribution (raw IEEE-754 bits), the typical selection, and the U-Top-k
/// vector when present.
///
/// Scan bookkeeping (scan depth, timings, per-line witnesses, U-Top-k
/// search counters) is deliberately excluded: an append that does not
/// change the top-k distribution may still change how deep the scan ran,
/// and a standing subscription must stay silent for it.
pub fn answer_hash(answer: &QueryAnswer) -> u64 {
    let mut hasher = DefaultHasher::new();
    for point in answer.distribution.points() {
        point.score.to_bits().hash(&mut hasher);
        point.probability.to_bits().hash(&mut hasher);
    }
    answer.typical.expected_distance.to_bits().hash(&mut hasher);
    for typical in &answer.typical.answers {
        typical.score.to_bits().hash(&mut hasher);
        typical.probability.to_bits().hash(&mut hasher);
    }
    if let Some(u_topk) = &answer.u_topk {
        for id in u_topk.vector.ids() {
            id.raw().hash(&mut hasher);
        }
    }
    hasher.finish()
}

/// What one append connection did — the daemon's log line for it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppendServeSummary {
    /// Registered name of the live dataset appended to.
    pub dataset: String,
    /// Rows the request carried (all accepted, or none).
    pub rows: u64,
    /// The acknowledgement shipped back: the watermark after the request.
    pub ack: AppendAck,
    /// The result cache's generation after the request (bumped when the
    /// epoch advanced).
    pub cache_generation: u64,
}

impl fmt::Display for AppendServeSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "append `{}`: {} rows accepted -> epoch {}, {} staged, {} visible{}, cache generation {}",
            self.dataset,
            self.rows,
            self.ack.epoch,
            self.ack.staged,
            self.ack.sealed_rows,
            if self.ack.sealed_now { " (sealed)" } else { "" },
            self.cache_generation,
        )
    }
}

/// What one subscription connection did over its lifetime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubscriptionSummary {
    /// Registered name of the live dataset watched.
    pub dataset: String,
    /// Standing-query evaluations (one per epoch advance, plus the
    /// baseline).
    pub evaluations: u64,
    /// Pushes actually sent — evaluations whose answer distribution
    /// differed from the previous push.
    pub pushes: u64,
    /// The last epoch the subscription evaluated at.
    pub last_epoch: u64,
}

impl fmt::Display for SubscriptionSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "subscription `{}`: {} evaluations, {} pushes, last epoch {}",
            self.dataset, self.evaluations, self.pushes, self.last_epoch,
        )
    }
}

/// What one admin connection did — the daemon's log line for it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdminServeSummary {
    /// The lifecycle verb executed.
    pub verb: AdminVerb,
    /// The dataset the verb targeted (empty for `stats`).
    pub target: String,
    /// The report shipped back to the admin client.
    pub report: String,
}

impl fmt::Display for AdminServeSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let first_line = self.report.lines().next().unwrap_or("");
        if self.target.is_empty() {
            write!(f, "admin {}: {first_line}", self.verb)
        } else {
            write!(f, "admin {} `{}`: {first_line}", self.verb, self.target)
        }
    }
}

/// What one served connection turned out to be, for the daemon's log.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeOutcome {
    /// A one-shot query.
    Query(QueryServeSummary),
    /// An append (+ optional seal) to a live dataset.
    Append(AppendServeSummary),
    /// A standing-query subscription that has now ended.
    Subscription(SubscriptionSummary),
    /// A wire-v6 admin-plane request.
    Admin(AdminServeSummary),
}

impl fmt::Display for ServeOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeOutcome::Query(summary) => summary.fmt(f),
            ServeOutcome::Append(summary) => summary.fmt(f),
            ServeOutcome::Subscription(summary) => summary.fmt(f),
            ServeOutcome::Admin(summary) => summary.fmt(f),
        }
    }
}

/// Serves one v5 connection, whatever its first frame asks for: a query
/// (exactly [`serve_query`]'s behaviour), an append to a live dataset, or a
/// standing-query subscription.
///
/// `stop` is the daemon's drain flag: a subscription loop re-checks it
/// every [`QueryServeOptions::subscription_poll`] and closes its push
/// stream cleanly when it flips, so workers can be joined.
///
/// # Errors
///
/// As [`serve_query`]: every failure is answered with a best-effort error
/// frame and returned, isolated to this connection.
pub fn serve_client(
    stream: TcpStream,
    registry: &DatasetRegistry,
    cache: &ResultCache,
    session: &mut Session,
    options: &QueryServeOptions,
    stop: &AtomicBool,
) -> Result<ServeOutcome> {
    let wait = match options.request_wait {
        Duration::ZERO => None,
        wait => Some(wait),
    };
    stream
        .set_read_timeout(wait)
        .map_err(|e| Error::Source(format!("arming the request timeout: {e}")))?;

    let mut read_half = &stream;
    let request = match wire::read_client_request(&mut read_half) {
        Ok(request) => request,
        Err(e) => {
            let _ = wire::write_query_error(&mut &stream, &e.to_string());
            return Err(e);
        }
    };

    let outcome = match request {
        ClientRequest::Query(request) => {
            serve_decoded_query(&stream, &request, registry, cache, session)
                .map(ServeOutcome::Query)
        }
        ClientRequest::Append(request) => {
            serve_append(&stream, request, registry, cache).map(ServeOutcome::Append)
        }
        ClientRequest::Subscribe(request) => {
            serve_subscription(&stream, &request, registry, cache, session, options, stop)
                .map(ServeOutcome::Subscription)
        }
        ClientRequest::Admin(request) => {
            serve_admin(&stream, request, registry, cache).map(ServeOutcome::Admin)
        }
    };
    match outcome {
        Ok(outcome) => Ok(outcome),
        Err(e) => {
            let _ = wire::write_query_error(&mut &stream, &e.to_string());
            Err(e)
        }
    }
}

/// One append connection: resolve the live dataset, apply the batch (and
/// the optional seal), bump the cache generation when the watermark moved,
/// acknowledge.
fn serve_append(
    stream: &TcpStream,
    request: AppendRequest,
    registry: &DatasetRegistry,
    cache: &ResultCache,
) -> Result<AppendServeSummary> {
    let log = registry.live(&request.dataset).ok_or_else(|| {
        if registry.get(&request.dataset).is_some() {
            Error::InvalidParameter(format!(
                "dataset `{}` is static; appends need a dataset served with --live",
                request.dataset
            ))
        } else {
            no_such_dataset(registry, &request.dataset)
        }
    })?;

    let rows = request.rows.len() as u64;
    let epoch_before = log.epoch();
    let mut outcome = log.append(request.rows)?;
    if request.seal {
        let sealed = log.seal();
        outcome = crate::live::AppendOutcome {
            sealed_now: outcome.sealed_now || sealed.sealed_now,
            ..sealed
        };
    }
    if outcome.epoch > epoch_before {
        cache.bump_generation();
    }

    let ack = AppendAck {
        epoch: outcome.epoch,
        staged: outcome.staged,
        sealed_rows: outcome.sealed_rows,
        sealed_now: outcome.sealed_now,
    };
    wire::write_append_ack(&mut &*stream, &ack)?;
    Ok(AppendServeSummary {
        dataset: request.dataset,
        rows,
        ack,
        cache_generation: cache.generation(),
    })
}

/// One admin connection: execute the lifecycle verb against the registry
/// and ship a human-readable report back in a single
/// [`wire::write_admin_response`] frame.
///
/// Failures return through `serve_client`'s common error path (a
/// best-effort error frame), so an admin client reads them as
/// `remote admin failed: …` — the same isolation every other request
/// kind gets.
fn serve_admin(
    stream: &TcpStream,
    request: AdminRequest,
    registry: &DatasetRegistry,
    cache: &ResultCache,
) -> Result<AdminServeSummary> {
    let AdminRequest { verb, name, arg } = request;
    let report = match verb {
        AdminVerb::Stats => stats_report(registry, cache),
        AdminVerb::Register => {
            let id = registry.admin_register(&name, &arg)?;
            format!("registered `{name}` from `{arg}` (dataset id {id})")
        }
        AdminVerb::Unregister => {
            registry.unregister(&name)?;
            format!("unregistered `{name}`; residents: {}", roster(registry))
        }
        AdminVerb::Reload => {
            let fresh = registry.reload(&name)?;
            cache.bump_generation();
            format!(
                "reloaded `{name}` (dataset id {}, cache generation {})",
                fresh.id(),
                cache.generation()
            )
        }
        AdminVerb::Compact => {
            let log = registry.live(&name).ok_or_else(|| {
                if registry.get(&name).is_some() {
                    Error::InvalidParameter(format!(
                        "dataset `{name}` is static; compaction applies to live datasets"
                    ))
                } else {
                    no_such_dataset(registry, &name)
                }
            })?;
            let outcome = log.compact();
            if outcome.compacted_now {
                cache.bump_generation();
                format!(
                    "compacted `{name}`: {} segments -> {} at epoch {} ({} rows visible)",
                    outcome.segments_before, outcome.segments_after, outcome.epoch, outcome.rows
                )
            } else {
                format!(
                    "nothing to compact in `{name}`: {} segment(s) at epoch {}",
                    outcome.segments_after, outcome.epoch
                )
            }
        }
    };
    wire::write_admin_response(&mut &*stream, &report)?;
    Ok(AdminServeSummary {
        verb,
        target: name,
        report,
    })
}

/// The `stats` verb's report: one line per resident dataset (live ones
/// with their epoch/segment/compaction state) plus the cache counters.
fn stats_report(registry: &DatasetRegistry, cache: &ResultCache) -> String {
    use std::fmt::Write as _;
    let names = registry.names();
    let mut report = format!("resident datasets: {}", names.len());
    for name in names {
        match registry.live(&name) {
            Some(log) => {
                let snapshot = log.snapshot();
                let _ = write!(
                    report,
                    "\n  {name}: live, epoch {}, {} segment(s), ",
                    snapshot.epoch(),
                    snapshot.segment_count()
                );
                match snapshot.compacted_epoch() {
                    0 => report.push_str("never compacted"),
                    epoch => {
                        let _ = write!(report, "last compacted at epoch {epoch}");
                    }
                }
                let _ = write!(
                    report,
                    ", {} row(s) visible, {} staged, {} subscriber(s)",
                    snapshot.rows(),
                    log.staged_rows(),
                    log.subscriber_count()
                );
            }
            None => {
                let _ = write!(report, "\n  {name}: static");
            }
        }
    }
    let _ = write!(
        report,
        "\nresult cache: {} hit(s), {} miss(es), {} expiration(s), generation {}",
        cache.hits(),
        cache.misses(),
        cache.expirations(),
        cache.generation()
    );
    report
}

/// The resident-dataset names as one comma-joined line (`(none)` when the
/// registry is empty) — the tail of the `unregister` report.
fn roster(registry: &DatasetRegistry) -> String {
    let names = registry.names();
    if names.is_empty() {
        "(none)".to_string()
    } else {
        names.join(", ")
    }
}

/// True when the subscribed client hung up (clean EOF or a dead socket).
fn client_gone(stream: &TcpStream) -> bool {
    if stream.set_nonblocking(true).is_err() {
        return true;
    }
    let mut probe = [0u8; 1];
    let gone = match stream.peek(&mut probe) {
        Ok(0) => true,
        Ok(_) => false,
        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => false,
        Err(_) => true,
    };
    let _ = stream.set_nonblocking(false);
    gone
}

/// One subscription connection: evaluate the standing query at the current
/// watermark (the baseline push), then re-evaluate on every epoch advance
/// and push only when the answer distribution shifted.
///
/// Pushes bypass the result cache deliberately: the subscription's
/// evaluations must not warm (or be warmed by) the one-shot query path, so
/// a cold query after an append still demonstrates the epoch-keyed miss.
fn serve_subscription(
    stream: &TcpStream,
    request: &SubscribeRequest,
    registry: &DatasetRegistry,
    cache: &ResultCache,
    session: &mut Session,
    options: &QueryServeOptions,
    stop: &AtomicBool,
) -> Result<SubscriptionSummary> {
    let name = request.query.dataset.as_str();
    let query = query_from_request(&request.query)?;
    let dataset = registry
        .get(name)
        .ok_or_else(|| no_such_dataset(registry, name))?;
    let log = registry.live(name).ok_or_else(|| {
        Error::InvalidParameter(format!(
            "dataset `{name}` is static; subscriptions need a dataset served with --live"
        ))
    })?;
    let _guard = log.subscribe();

    let mut evaluations = 0u64;
    let mut pushes = 0u64;
    let mut last_hash: Option<u64> = None;
    let mut last_epoch = log.epoch();

    'serve: loop {
        evaluations += 1;
        let answer = session.execute(&dataset, &query)?;
        let hash = answer_hash(&answer);
        if last_hash != Some(hash) {
            let mut result = answer_to_wire(&answer, false);
            result.epoch = last_epoch;
            result.cache_generation = cache.generation();
            let mut writer = BufWriter::new(stream);
            wire::write_notification(
                &mut writer,
                &Notification {
                    epoch: last_epoch,
                    answer_hash: hash,
                },
            )?;
            wire::write_query_result(&mut writer, &result)?;
            pushes += 1;
            last_hash = Some(hash);
            if request.max_pushes != 0 && pushes >= request.max_pushes {
                wire::write_push_end(&mut &*stream)?;
                break 'serve;
            }
        }
        loop {
            if stop.load(Ordering::Relaxed) {
                let _ = wire::write_push_end(&mut &*stream);
                break 'serve;
            }
            if client_gone(stream) {
                break 'serve;
            }
            if let Some(snapshot) = log.wait_for_epoch_beyond(last_epoch, options.subscription_poll)
            {
                last_epoch = snapshot.epoch();
                continue 'serve;
            }
        }
    }

    Ok(SubscriptionSummary {
        dataset: name.to_string(),
        evaluations,
        pushes,
        last_epoch,
    })
}

/// A remote answer: the engine answer plus the server's cache outcome.
#[derive(Debug, Clone)]
pub struct RemoteAnswer {
    /// The decoded answer, bit-identical to the serving process's run.
    pub answer: QueryAnswer,
    /// True when the server answered from its result cache.
    pub cache_hit: bool,
    /// The dataset epoch the answer is pinned to (`None` from a pre-v5
    /// server).
    pub epoch: Option<u64>,
    /// The server's result-cache generation at answer time (`None` from a
    /// pre-v5 server).
    pub cache_generation: Option<u64>,
    /// Sealed segments behind a live dataset's answer (`None` from a pre-v6
    /// server or for a static dataset).
    pub live_segments: Option<u64>,
    /// The epoch the live dataset was last compacted at — 0 means never
    /// (`None` from a pre-v6 server or for a static dataset).
    pub compacted_epoch: Option<u64>,
}

/// The client side of query serving: dials a `ttk serve` daemon, ships the
/// query, decodes the answer.
///
/// Dialing follows the shard client's retry discipline: transient failures
/// (resolution, the TCP dial, a connection lost before the result header)
/// retry under exponential backoff; an error frame *answered by the server*
/// is a semantic failure and returns immediately — retrying "no such
/// dataset" cannot help.
#[derive(Debug, Clone)]
pub struct RemoteQueryClient {
    addr: String,
    options: ConnectOptions,
}

impl RemoteQueryClient {
    /// A client for the daemon at `addr` (`host:port`). Nothing connects
    /// until the first [`execute`](Self::execute).
    pub fn new(addr: impl Into<String>) -> Self {
        RemoteQueryClient {
            addr: addr.into(),
            options: ConnectOptions::default(),
        }
    }

    /// Overrides the dial behaviour (timeouts, retries, backoff).
    pub fn with_connect_options(mut self, options: ConnectOptions) -> Self {
        self.options = options;
        self
    }

    /// The daemon address this client dials.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Ships `query` against the resident dataset `dataset` and decodes the
    /// answer. Each attempt uses a fresh connection, so a retry never
    /// resumes a half-spoken exchange.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Source`] with the dial history once the retry budget
    /// is spent, or the server's own error immediately (unknown dataset,
    /// invalid parameters, execution failure).
    pub fn execute(&self, dataset: &str, query: &TopkQuery) -> Result<RemoteAnswer> {
        let request = request_for(dataset, query);
        self.retry("remote query failed", "querying", || {
            self.try_query(&request)
        })
    }

    /// Appends `rows` to the server-resident **live** dataset `dataset`,
    /// sealing the staging buffer afterwards when `seal` is set, and decodes
    /// the server's watermark acknowledgement.
    ///
    /// Retries follow [`execute`](Self::execute)'s discipline. A retry after
    /// a connection lost mid-exchange may find the first attempt's rows
    /// already applied; the server then rejects the duplicate ids, which
    /// surfaces as a semantic `remote append failed` error rather than a
    /// silent double-append.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Source`] with the dial history once the retry budget
    /// is spent, or the server's own refusal immediately (unknown or static
    /// dataset, duplicate ids, ME-group mass overflow).
    pub fn append(&self, dataset: &str, rows: Vec<SourceTuple>, seal: bool) -> Result<AppendAck> {
        let request = AppendRequest {
            dataset: dataset.to_string(),
            seal,
            rows,
        };
        self.retry("remote append failed", "appending to", || {
            let stream = self.dial()?;
            wire::write_append_request(&mut &stream, &request)?;
            let mut reader = BufReader::new(&stream);
            wire::read_append_ack(&mut reader)
        })
    }

    /// Subscribes a standing `query` against the server-resident live
    /// dataset `dataset` and returns the push stream. The server pushes a
    /// baseline answer immediately, then again whenever the top-k answer
    /// distribution shifts; after `max_pushes` pushes (0 = unlimited) it
    /// ends the stream cleanly.
    ///
    /// Only the dial retries here — once the subscription is written, the
    /// connection belongs to [`WatchClient`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::Source`] with the dial history once the retry budget
    /// is spent.
    pub fn watch(&self, dataset: &str, query: &TopkQuery, max_pushes: u64) -> Result<WatchClient> {
        // Subscriptions are a v5 exchange (v6 only adds the admin plane and
        // the one-shot result tail), so the embedded query pins v5 — that
        // keeps the subscribe frame byte-identical to a v5 client's.
        let mut wire_query = request_for(dataset, query);
        wire_query.version = WIRE_VERSION_V5;
        let request = SubscribeRequest {
            query: wire_query,
            max_pushes,
        };
        let stream = self.retry("remote subscription failed", "subscribing to", || {
            let stream = self.dial()?;
            wire::write_subscribe(&mut &stream, &request)?;
            Ok(stream)
        })?;
        Ok(WatchClient {
            reader: BufReader::new(stream),
        })
    }

    /// The shared retry/backoff loop: transient failures retry, messages
    /// starting with `semantic` (the server answered; retrying cannot help)
    /// return immediately.
    fn retry<T>(&self, semantic: &str, action: &str, run: impl Fn() -> Result<T>) -> Result<T> {
        let mut delay = self.options.backoff;
        let mut first = None;
        let mut last = None;
        for attempt in 0..=self.options.retries {
            if attempt > 0 {
                std::thread::sleep(delay);
                delay = delay.saturating_mul(2);
            }
            match run() {
                Ok(value) => return Ok(value),
                // The server decoded our request and answered with an error
                // frame: the connection works, the request is the problem.
                Err(Error::Source(m)) if m.starts_with(semantic) => {
                    return Err(Error::Source(m));
                }
                Err(e) => {
                    let text = match e {
                        Error::Source(m) => m,
                        other => other.to_string(),
                    };
                    first.get_or_insert(text.clone());
                    last = Some(text);
                }
            }
        }
        let attempts = self.options.retries as usize + 1;
        let first = first.expect("at least one attempt ran");
        let last = last.expect("at least one attempt ran");
        let history = if last == first {
            first
        } else {
            format!("{first}; finally: {last}")
        };
        Err(Error::Source(format!(
            "{action} server {}: {history} (after {attempts} attempt{})",
            self.addr,
            if attempts == 1 { "" } else { "s" }
        )))
    }

    /// Resolves and connects one fresh stream, read timeout armed.
    fn dial(&self) -> Result<TcpStream> {
        let addr = &self.addr;
        let sock_addrs: Vec<_> = addr
            .to_socket_addrs()
            .map_err(|e| Error::Source(format!("resolving {addr}: {e}")))?
            .collect();
        let mut last = None;
        let stream = sock_addrs
            .iter()
            .find_map(
                |sock| match TcpStream::connect_timeout(sock, self.options.connect_timeout) {
                    Ok(stream) => Some(stream),
                    Err(e) => {
                        last = Some(e);
                        None
                    }
                },
            )
            .ok_or_else(|| match last {
                Some(e) => Error::Source(format!("dialing {addr}: {e}")),
                None => Error::Source(format!("{addr} resolved to no addresses")),
            })?;
        stream
            .set_read_timeout(self.options.read_timeout)
            .map_err(|e| Error::Source(format!("arming read timeout on {addr}: {e}")))?;
        Ok(stream)
    }

    /// One attempt: resolve, connect, send the request, decode the result.
    fn try_query(&self, request: &QueryRequest) -> Result<RemoteAnswer> {
        let stream = self.dial()?;
        wire::write_query_request(&mut &stream, request)?;
        let mut reader = BufReader::new(&stream);
        let result = wire::read_query_result(&mut reader)?;
        let (epoch, cache_generation) = if result.version >= WIRE_VERSION_V5 {
            (Some(result.epoch), Some(result.cache_generation))
        } else {
            (None, None)
        };
        let (live_segments, compacted_epoch) = if result.version >= WIRE_VERSION_V6 && result.live {
            (Some(result.live_segments), Some(result.compacted_epoch))
        } else {
            (None, None)
        };
        let (answer, cache_hit) = answer_from_wire(result);
        Ok(RemoteAnswer {
            answer,
            cache_hit,
            epoch,
            cache_generation,
            live_segments,
            compacted_epoch,
        })
    }

    /// The plan view of a remote execution, for `explain --server --after`:
    /// the server's observed scan depth and cache outcome folded into a
    /// [`PlanDescription`] whose path is [`ScanPath::RemoteQuery`].
    pub fn plan(&self, dataset: &str, query: &TopkQuery, remote: &RemoteAnswer) -> PlanDescription {
        PlanDescription {
            dataset: format!("{dataset}@{}", self.addr),
            path: ScanPath::RemoteQuery,
            rows: None,
            algorithm: query.algorithm,
            k: query.k,
            p_tau: query.p_tau,
            estimated_depth: Some(estimated_scan_depth(query.k, query.p_tau, None)),
            observed_depth: Some(remote.answer.scan_depth),
            estimated_cost: estimated_cost(query, None),
            drains_stream: query.compute_u_topk || query.algorithm == Algorithm::Exhaustive,
            observed_wire_tuples: None,
            observed_wire_blocks: None,
            observed_wire_block_tuples: None,
            server_cache_hit: Some(remote.cache_hit),
            dataset_epoch: remote.epoch,
            server_cache_generation: remote.cache_generation,
            live_segments: remote.live_segments.map(|segments| segments as usize),
            last_compaction_epoch: remote.compacted_epoch,
        }
    }

    /// Ships one admin-plane request (wire v6) and returns the server's
    /// plain-text report.
    ///
    /// Retries follow [`execute`](Self::execute)'s discipline: transient
    /// dial failures retry under backoff, a server-answered refusal
    /// (`remote admin failed: …`) returns immediately. Every verb here is
    /// safe to retry after a connection lost mid-exchange — `register`
    /// re-sent after a success fails on the duplicate-name check rather
    /// than double-registering.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Source`] with the dial history once the retry
    /// budget is spent, or the server's own refusal immediately.
    pub fn admin(&self, request: &AdminRequest) -> Result<String> {
        self.retry("remote admin failed", "administering", || {
            let stream = self.dial()?;
            wire::write_admin_request(&mut &stream, request)?;
            let mut reader = BufReader::new(&stream);
            wire::read_admin_response(&mut reader)
        })
    }
}

/// One pushed subscription event: the server's watermark and answer hash,
/// plus the full decoded answer.
#[derive(Debug, Clone)]
pub struct WatchPush {
    /// Epoch the pushed answer was computed at.
    pub epoch: u64,
    /// The server's [`answer_hash`] of the pushed answer.
    pub answer_hash: u64,
    /// The decoded answer, bit-identical to the server's evaluation.
    pub answer: QueryAnswer,
}

/// The client side of a standing subscription: a connection the server
/// pushes on. Obtained from [`RemoteQueryClient::watch`]; dropping it
/// cancels the subscription (the server notices the hang-up on its next
/// poll tick).
#[derive(Debug)]
pub struct WatchClient {
    reader: BufReader<TcpStream>,
}

impl WatchClient {
    /// Blocks for the next push. `Ok(None)` means the server ended the
    /// stream cleanly (push budget reached, or the daemon is draining).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Source`] on a lost connection, a malformed frame, or
    /// a server-side subscription failure.
    pub fn next_push(&mut self) -> Result<Option<WatchPush>> {
        let Some(notification) = wire::read_push(&mut self.reader)? else {
            return Ok(None);
        };
        let result = wire::read_query_result(&mut self.reader)?;
        let (answer, _) = answer_from_wire(result);
        Ok(Some(WatchPush {
            epoch: notification.epoch,
            answer_hash: notification.answer_hash,
            answer,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::Dataset;
    use std::net::TcpListener;
    use ttk_uncertain::UncertainTable;

    fn soldier_table() -> UncertainTable {
        UncertainTable::builder()
            .tuple(1u64, 49.0, 0.4)
            .expect("tuple")
            .tuple(2u64, 60.0, 0.4)
            .expect("tuple")
            .tuple(3u64, 110.0, 0.4)
            .expect("tuple")
            .tuple(4u64, 80.0, 0.3)
            .expect("tuple")
            .tuple(5u64, 56.0, 1.0)
            .expect("tuple")
            .tuple(6u64, 58.0, 0.5)
            .expect("tuple")
            .tuple(7u64, 125.0, 0.3)
            .expect("tuple")
            .me_rule([2u64, 4, 7])
            .me_rule([3u64, 6])
            .build()
            .expect("table")
    }

    #[test]
    fn request_and_query_round_trip_preserves_every_knob() {
        let query = TopkQuery::new(5)
            .with_p_tau(1e-6)
            .with_typical_count(7)
            .with_max_lines(0)
            .with_algorithm(Algorithm::StateExpansion)
            .with_coalesce_policy(CoalescePolicy::WeightedMean)
            .with_u_topk(false);
        let request = request_for("sensors", &query);
        assert_eq!(request.dataset, "sensors");
        let back = query_from_request(&request).expect("valid request");
        assert_eq!(back.k, query.k);
        assert_eq!(back.p_tau.to_bits(), query.p_tau.to_bits());
        assert_eq!(back.typical_count, query.typical_count);
        assert_eq!(back.max_lines, query.max_lines);
        assert_eq!(back.algorithm, query.algorithm);
        assert_eq!(back.coalesce_policy, query.coalesce_policy);
        assert_eq!(back.compute_u_topk, query.compute_u_topk);
    }

    #[test]
    fn unknown_wire_codes_are_rejected() {
        assert!(algorithm_from_code(99).is_err());
        assert!(coalesce_from_code(99).is_err());
        for algorithm in [
            Algorithm::Main,
            Algorithm::MainPerEnding,
            Algorithm::StateExpansion,
            Algorithm::KCombo,
            Algorithm::Exhaustive,
        ] {
            assert_eq!(
                algorithm_from_code(algorithm_code(algorithm)).expect("round trip"),
                algorithm
            );
        }
    }

    #[test]
    fn answer_conversion_is_bit_identical() {
        let dataset = Dataset::table(soldier_table());
        let mut session = Session::new();
        let query = TopkQuery::new(2).with_p_tau(1e-9).with_max_lines(0);
        let answer = session.execute(&dataset, &query).expect("executes");

        let (decoded, cache_hit) = answer_from_wire(answer_to_wire(&answer, true));
        assert!(cache_hit);
        assert_eq!(decoded.distribution, answer.distribution);
        assert_eq!(decoded.typical, answer.typical);
        assert_eq!(decoded.scan_depth, answer.scan_depth);
        let decoded_u = decoded.u_topk.expect("u-topk requested");
        let cold_u = answer.u_topk.as_ref().expect("u-topk requested");
        assert_eq!(decoded_u.vector, cold_u.vector);
        assert_eq!(decoded_u.expansions, cold_u.expansions);
        assert_eq!(decoded_u.deepest_position, cold_u.deepest_position);
    }

    #[test]
    fn loopback_serve_query_misses_then_hits_bit_identically() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();

        let server = std::thread::spawn(move || {
            let registry = DatasetRegistry::new();
            registry
                .register("soldiers", Dataset::table(soldier_table()))
                .expect("registers");
            let cache = ResultCache::new(8);
            let mut session = Session::new();
            let options = QueryServeOptions::default();
            let mut summaries = Vec::new();
            for _ in 0..3 {
                let (stream, _) = listener.accept().expect("accept");
                summaries.push(serve_query(
                    stream,
                    &registry,
                    &cache,
                    &mut session,
                    &options,
                ));
            }
            summaries
        });

        let dataset = Dataset::table(soldier_table());
        let mut session = Session::new();
        let query = TopkQuery::new(2).with_p_tau(1e-9).with_max_lines(0);
        let local = session.execute(&dataset, &query).expect("local run");

        let client = RemoteQueryClient::new(addr.as_str());
        let cold = client.execute("soldiers", &query).expect("cold query");
        assert!(!cold.cache_hit);
        let cached = client.execute("soldiers", &query).expect("cached query");
        assert!(cached.cache_hit);

        for remote in [&cold, &cached] {
            assert_eq!(remote.answer.distribution, local.distribution);
            assert_eq!(remote.answer.typical, local.typical);
            assert_eq!(remote.answer.scan_depth, local.scan_depth);
        }

        let err = client
            .execute("missing", &query)
            .expect_err("unknown dataset");
        let text = err.to_string();
        assert!(text.contains("no such dataset"), "got: {text}");
        assert!(text.contains("soldiers"), "got: {text}");

        let summaries = server.join().expect("server thread");
        let outcomes: Vec<bool> = summaries
            .iter()
            .take(2)
            .map(|s| s.as_ref().expect("served").cache_hit)
            .collect();
        assert_eq!(outcomes, vec![false, true]);
        let first = summaries[0].as_ref().expect("served");
        let line = first.to_string();
        assert!(line.contains("dataset id"), "got: {line}");
        assert!(line.contains("cache miss"), "got: {line}");
        assert!(summaries[2].is_err(), "unknown dataset must surface");
    }

    #[test]
    fn stalled_client_releases_the_worker_after_request_wait() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");

        // Connect and never send the request frame.
        let _stalled = TcpStream::connect(addr).expect("connect");
        let (stream, _) = listener.accept().expect("accept");

        let registry = DatasetRegistry::new();
        let cache = ResultCache::new(1);
        let mut session = Session::new();
        let options = QueryServeOptions {
            request_wait: Duration::from_millis(50),
            ..QueryServeOptions::default()
        };
        let started = std::time::Instant::now();
        let outcome = serve_query(stream, &registry, &cache, &mut session, &options);
        assert!(outcome.is_err(), "a stalled client cannot produce a query");
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "the worker must be released promptly"
        );
    }

    #[test]
    fn plan_reports_remote_path_and_server_cache_outcome() {
        let client = RemoteQueryClient::new("example.invalid:4321");
        let query = TopkQuery::new(3);
        let dataset = Dataset::table(soldier_table());
        let mut session = Session::new();
        let answer = session.execute(&dataset, &query).expect("executes");
        let remote = RemoteAnswer {
            answer,
            cache_hit: true,
            epoch: Some(3),
            cache_generation: Some(2),
            live_segments: Some(4),
            compacted_epoch: Some(2),
        };
        let plan = client.plan("soldiers", &query, &remote);
        assert_eq!(plan.path, ScanPath::RemoteQuery);
        assert_eq!(plan.server_cache_hit, Some(true));
        assert_eq!(plan.dataset_epoch, Some(3));
        assert_eq!(plan.server_cache_generation, Some(2));
        assert_eq!(plan.live_segments, Some(4));
        assert_eq!(plan.last_compaction_epoch, Some(2));
        assert_eq!(plan.observed_depth, Some(remote.answer.scan_depth));
        let text = plan.to_string();
        assert!(text.contains("server result cache: hit"), "got: {text}");
        assert!(
            text.contains("soldiers@example.invalid:4321"),
            "got: {text}"
        );
    }
}
