//! Exhaustive possible-world baselines.
//!
//! These functions enumerate every possible world of a table and are the
//! ground truth against which the efficient algorithms are verified. Their
//! cost is exponential in the number of ME groups, so they are only suitable
//! for small tables (tests, toy examples and sanity checks in the benchmark
//! harness).

use std::collections::HashMap;

use ttk_uncertain::{
    PossibleWorlds, Result, ScoreDistribution, TupleId, TupleSource, UncertainTable, VectorWitness,
};

use crate::scan::RankScan;
use crate::scan_depth::ScanGate;

/// Computes the exact top-k score distribution from a rank-ordered
/// [`TupleSource`] by draining the stream (exhaustive enumeration needs every
/// tuple, so the gate stays open) and enumerating possible worlds.
///
/// # Errors
///
/// Propagates source errors and [`PossibleWorlds`] limits.
pub fn exhaustive_topk_distribution_streamed(
    source: &mut dyn TupleSource,
    k: usize,
    world_limit: u128,
) -> Result<ScoreDistribution> {
    let mut gate = ScanGate::open();
    let prefix = RankScan::new().collect_prefix(source, &mut gate)?;
    exhaustive_topk_distribution(&prefix.table, k, world_limit)
}

/// Computes the exact top-k score distribution *with witness vectors*: each
/// line carries the most probable single vector attaining that score, where a
/// vector's probability is the total mass of the worlds in which it is one of
/// the top-k vectors.
pub fn exhaustive_topk_distribution(
    table: &UncertainTable,
    k: usize,
    world_limit: u128,
) -> Result<ScoreDistribution> {
    let mut score_mass: Vec<(f64, f64)> = Vec::new();
    let mut vector_mass: HashMap<Vec<usize>, f64> = HashMap::new();
    for world in PossibleWorlds::new(table, world_limit)? {
        if world.probability <= 0.0 {
            continue;
        }
        let Some(score) = world.topk_score(table, k) else {
            continue;
        };
        match score_mass
            .iter_mut()
            .find(|(s, _)| ttk_uncertain::scores_equal(*s, score))
        {
            Some((_, p)) => *p += world.probability,
            None => score_mass.push((score, world.probability)),
        }
        for vector in world.topk_vectors(table, k) {
            *vector_mass.entry(vector).or_insert(0.0) += world.probability;
        }
    }

    // For each score, find the most probable vector attaining it.
    let mut best_vector_for_score: HashMap<u64, (Vec<usize>, f64)> = HashMap::new();
    for (vector, mass) in &vector_mass {
        let score: f64 = vector.iter().map(|&p| table.tuple(p).score()).sum();
        let key = score.to_bits();
        let entry = best_vector_for_score
            .entry(key)
            .or_insert((vector.clone(), *mass));
        if *mass > entry.1 {
            *entry = (vector.clone(), *mass);
        }
    }

    let mut dist = ScoreDistribution::empty();
    for (score, probability) in score_mass {
        let witness = best_vector_for_score
            .get(&score.to_bits())
            .map(|(v, p)| VectorWitness {
                ids: v.iter().map(|&pos| table.tuple(pos).id()).collect(),
                probability: *p,
            });
        dist.add_mass(score, probability, witness);
    }
    Ok(dist)
}

/// Computes the exact U-Topk answer by enumeration: the vector with the
/// highest probability of being *a* top-k vector, returned as
/// `(ids in rank order, probability)`. Returns `Ok(None)` when no world has
/// `k` tuples.
pub fn exhaustive_u_topk(
    table: &UncertainTable,
    k: usize,
    world_limit: u128,
) -> Result<Option<(Vec<TupleId>, f64)>> {
    let mut vector_mass: HashMap<Vec<usize>, f64> = HashMap::new();
    for world in PossibleWorlds::new(table, world_limit)? {
        if world.probability <= 0.0 {
            continue;
        }
        for vector in world.topk_vectors(table, k) {
            *vector_mass.entry(vector).or_insert(0.0) += world.probability;
        }
    }
    Ok(vector_mass
        .into_iter()
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .map(|(positions, mass)| {
            (
                positions.iter().map(|&p| table.tuple(p).id()).collect(),
                mass,
            )
        }))
}

/// Probability that the tuple with the given id appears among the top-k in a
/// random possible world (its *top-k membership probability*, the quantity
/// the PT-k semantics thresholds).
pub fn exhaustive_topk_membership(
    table: &UncertainTable,
    id: impl Into<TupleId>,
    k: usize,
    world_limit: u128,
) -> Result<f64> {
    let Some(target) = table.position(id.into()) else {
        return Ok(0.0);
    };
    let mut mass = 0.0;
    for world in PossibleWorlds::new(table, world_limit)? {
        if world.probability <= 0.0 {
            continue;
        }
        // The tuple is in the top-k when its rank among present tuples is
        // within k (ties handled by rank order, consistently with the rest of
        // the workspace). Worlds with fewer than k tuples count as long as
        // the tuple exists, matching the PT-k membership semantics.
        if world.present.iter().take(k).any(|&p| p == target) {
            mass += world.probability;
        }
    }
    Ok(mass)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn soldier_table() -> UncertainTable {
        UncertainTable::builder()
            .tuple(1u64, 49.0, 0.4)
            .unwrap()
            .tuple(2u64, 60.0, 0.4)
            .unwrap()
            .tuple(3u64, 110.0, 0.4)
            .unwrap()
            .tuple(4u64, 80.0, 0.3)
            .unwrap()
            .tuple(5u64, 56.0, 1.0)
            .unwrap()
            .tuple(6u64, 58.0, 0.5)
            .unwrap()
            .tuple(7u64, 125.0, 0.3)
            .unwrap()
            .me_rule([2u64, 4, 7])
            .me_rule([3u64, 6])
            .build()
            .unwrap()
    }

    #[test]
    fn distribution_with_witnesses_matches_figure_3() {
        let d = exhaustive_topk_distribution(&soldier_table(), 2, 1 << 20).unwrap();
        assert!((d.total_probability() - 1.0).abs() < 1e-9);
        let p118 = d
            .points()
            .iter()
            .find(|p| (p.score - 118.0).abs() < 1e-9)
            .unwrap();
        assert!((p118.probability - 0.2).abs() < 1e-9);
        assert_eq!(
            p118.witness.as_ref().unwrap().ids,
            vec![TupleId(2), TupleId(6)]
        );
    }

    #[test]
    fn u_topk_by_enumeration_is_t2_t6() {
        let (ids, prob) = exhaustive_u_topk(&soldier_table(), 2, 1 << 20)
            .unwrap()
            .unwrap();
        assert_eq!(ids, vec![TupleId(2), TupleId(6)]);
        assert!((prob - 0.2).abs() < 1e-9);
    }

    #[test]
    fn membership_probability_of_the_certain_tuple() {
        // T5 exists in every world; it is in the top-2 whenever at most one
        // higher-scored tuple appears.
        let table = soldier_table();
        let p = exhaustive_topk_membership(&table, 5u64, 2, 1 << 20).unwrap();
        assert!(p > 0.0 && p < 1.0);
        // Unknown tuples have zero membership probability.
        assert_eq!(
            exhaustive_topk_membership(&table, 999u64, 2, 1 << 20).unwrap(),
            0.0
        );
    }
}
