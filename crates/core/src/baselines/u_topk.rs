//! The U-Topk comparator semantics (Soliman, Ilyas, Chang — ICDE 2007).
//!
//! U-Topk returns the single k-tuple vector with the highest probability of
//! being the top-k across all possible worlds. The paper under reproduction
//! uses U-Topk as the comparison point for every evaluation figure: the
//! U-Topk score is marked on each score distribution to show how *atypical*
//! it can be.
//!
//! The implementation is the classical best-first search over prefix states:
//! tuples are processed in rank order, each state records which of the
//! processed tuples appear, and states are expanded in order of decreasing
//! probability. Because extending a state can only lower its probability,
//! the first state that reaches `k` appearing tuples is the optimal answer
//! (the "optimal number of accessed tuples" property of \[18\]).

use std::collections::{BinaryHeap, HashMap};

use ttk_uncertain::{Error, Result, TopkVector, TupleId, TupleSource, UncertainTable};

use crate::scan::RankScan;
use crate::scan_depth::ScanGate;

/// Safety limit and outcome statistics for the best-first search.
#[derive(Debug, Clone, Copy)]
pub struct UTopkConfig {
    /// Maximum number of states popped from the frontier before giving up.
    /// Protects against pathological inputs where the frontier grows
    /// exponentially; the default is generous.
    pub max_expansions: u64,
}

impl Default for UTopkConfig {
    fn default() -> Self {
        UTopkConfig {
            max_expansions: 20_000_000,
        }
    }
}

/// The U-Topk answer together with search statistics.
#[derive(Debug, Clone)]
pub struct UTopkAnswer {
    /// The most probable top-k vector.
    pub vector: TopkVector,
    /// Number of states popped from the frontier.
    pub expansions: u64,
    /// Deepest rank position examined (the "scan depth" of the search).
    pub deepest_position: usize,
}

#[derive(Debug, Clone)]
struct SearchState {
    probability: f64,
    /// Next rank position to decide.
    next: usize,
    selected: Vec<TupleId>,
    score: f64,
    /// Per-group probability mass excluded so far (groups without an
    /// included member only).
    excluded: HashMap<usize, f64>,
    included_groups: Vec<usize>,
}

impl PartialEq for SearchState {
    fn eq(&self, other: &Self) -> bool {
        self.probability == other.probability
    }
}
impl Eq for SearchState {}
impl PartialOrd for SearchState {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for SearchState {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Max-heap by probability; deeper states win ties so completed
        // vectors surface promptly.
        self.probability
            .total_cmp(&other.probability)
            .then(self.next.cmp(&other.next))
    }
}

/// Computes the U-Topk answer from a rank-ordered [`TupleSource`].
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] when `k == 0` or the search exceeds
/// [`UTopkConfig::max_expansions`]; propagates source errors.
pub fn u_topk_streamed(
    source: &mut dyn TupleSource,
    k: usize,
    config: &UTopkConfig,
) -> Result<Option<UTopkAnswer>> {
    // U-Topk has no probability threshold, so Theorem 2 provides no bound for
    // it; the stream is drained through an open gate (the best-first search
    // itself then stops at its optimal depth).
    let mut gate = ScanGate::open();
    let prefix = RankScan::new().collect_prefix(source, &mut gate)?;
    u_topk(&prefix.table, k, config)
}

/// Computes the U-Topk answer: the k-tuple vector with the highest
/// probability of being the top-k vector of the table (see
/// [`u_topk_streamed`] for the source-based variant).
///
/// Returns `None` when the table cannot produce `k` co-existing tuples (for
/// example when it has fewer than `k` ME groups).
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] when `k == 0` or the search exceeds
/// [`UTopkConfig::max_expansions`].
pub fn u_topk(
    table: &UncertainTable,
    k: usize,
    config: &UTopkConfig,
) -> Result<Option<UTopkAnswer>> {
    if k == 0 {
        return Err(Error::InvalidParameter("k must be at least 1".into()));
    }
    let mut heap = BinaryHeap::new();
    heap.push(SearchState {
        probability: 1.0,
        next: 0,
        selected: Vec::new(),
        score: 0.0,
        excluded: HashMap::new(),
        included_groups: Vec::new(),
    });
    let mut expansions: u64 = 0;
    let mut deepest = 0usize;

    while let Some(state) = heap.pop() {
        expansions += 1;
        if expansions > config.max_expansions {
            return Err(Error::InvalidParameter(format!(
                "U-Topk search exceeded {} expansions",
                config.max_expansions
            )));
        }
        deepest = deepest.max(state.next);
        if state.selected.len() == k {
            return Ok(Some(UTopkAnswer {
                vector: TopkVector::new(state.selected, state.score, state.probability),
                expansions,
                deepest_position: deepest,
            }));
        }
        if state.next >= table.len() {
            continue; // Dead end: ran out of tuples before reaching k.
        }
        let pos = state.next;
        let tuple = table.tuple(pos);
        let group = table.group_index(pos);
        let singleton = table.group_members(pos).len() == 1;
        let has_included = state.included_groups.contains(&group);

        // Include branch.
        if !has_included {
            let excluded_mass = state.excluded.get(&group).copied().unwrap_or(0.0);
            let denom = 1.0 - excluded_mass;
            if denom > 1e-15 {
                let probability = state.probability / denom * tuple.prob();
                if probability > 0.0 {
                    let mut s = state.clone();
                    s.probability = probability;
                    s.next = pos + 1;
                    s.selected.push(tuple.id());
                    s.score += tuple.score();
                    if !singleton {
                        s.excluded.remove(&group);
                        s.included_groups.push(group);
                    }
                    heap.push(s);
                }
            }
        }
        // Exclude branch.
        let (probability, new_excluded) = if has_included {
            (state.probability, None)
        } else if singleton {
            (state.probability * tuple.probability().complement(), None)
        } else {
            let excluded_mass = state.excluded.get(&group).copied().unwrap_or(0.0);
            let denom = 1.0 - excluded_mass;
            let numer = 1.0 - excluded_mass - tuple.prob();
            if denom <= 1e-15 || numer <= 0.0 {
                (0.0, None)
            } else {
                (
                    state.probability / denom * numer,
                    Some(excluded_mass + tuple.prob()),
                )
            }
        };
        if probability > 0.0 {
            let mut s = state;
            s.probability = probability;
            s.next = pos + 1;
            if let Some(mass) = new_excluded {
                s.excluded.insert(group, mass);
            }
            heap.push(s);
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn soldier_table() -> UncertainTable {
        UncertainTable::builder()
            .tuple(1u64, 49.0, 0.4)
            .unwrap()
            .tuple(2u64, 60.0, 0.4)
            .unwrap()
            .tuple(3u64, 110.0, 0.4)
            .unwrap()
            .tuple(4u64, 80.0, 0.3)
            .unwrap()
            .tuple(5u64, 56.0, 1.0)
            .unwrap()
            .tuple(6u64, 58.0, 0.5)
            .unwrap()
            .tuple(7u64, 125.0, 0.3)
            .unwrap()
            .me_rule([2u64, 4, 7])
            .me_rule([3u64, 6])
            .build()
            .unwrap()
    }

    #[test]
    fn u_top2_of_the_soldier_table_is_t2_t6() {
        // §1: the U-Top2 vector is <T2, T6> with probability 0.2 and total
        // score 118.
        let answer = u_topk(&soldier_table(), 2, &UTopkConfig::default())
            .unwrap()
            .unwrap();
        assert_eq!(answer.vector.ids(), &[TupleId(2), TupleId(6)]);
        assert!((answer.vector.probability() - 0.2).abs() < 1e-9);
        assert!((answer.vector.total_score() - 118.0).abs() < 1e-9);
    }

    #[test]
    fn u_top1_is_the_certain_tuple() {
        // T5 has probability 1 but score 56; the top-1 is T5 only when every
        // higher-scored tuple is absent: 0.7 * 0.6 * ... let's check that the
        // search agrees with brute force via the exhaustive baseline.
        let table = soldier_table();
        let answer = u_topk(&table, 1, &UTopkConfig::default()).unwrap().unwrap();
        let exact = crate::baselines::exhaustive::exhaustive_u_topk(&table, 1, 1 << 20).unwrap();
        let (ids, prob) = exact.expect("table has top-1 vectors");
        assert_eq!(answer.vector.ids(), &ids[..]);
        assert!((answer.vector.probability() - prob).abs() < 1e-9);
    }

    #[test]
    fn matches_exhaustive_for_all_small_k() {
        let table = soldier_table();
        for k in 1..=4 {
            let answer = u_topk(&table, k, &UTopkConfig::default()).unwrap().unwrap();
            let exact = crate::baselines::exhaustive::exhaustive_u_topk(&table, k, 1 << 20)
                .unwrap()
                .unwrap();
            assert!(
                (answer.vector.probability() - exact.1).abs() < 1e-9,
                "k={k}: {} vs {}",
                answer.vector.probability(),
                exact.1
            );
        }
    }

    #[test]
    fn impossible_k_returns_none() {
        let table = UncertainTable::builder()
            .tuple(1u64, 5.0, 0.5)
            .unwrap()
            .tuple(2u64, 4.0, 0.5)
            .unwrap()
            .me_rule([1u64, 2])
            .build()
            .unwrap();
        assert!(u_topk(&table, 2, &UTopkConfig::default())
            .unwrap()
            .is_none());
        assert!(u_topk(&table, 1, &UTopkConfig::default())
            .unwrap()
            .is_some());
    }

    #[test]
    fn rejects_k_zero_and_expansion_limit() {
        let table = soldier_table();
        assert!(u_topk(&table, 0, &UTopkConfig::default()).is_err());
        let err = u_topk(&table, 2, &UTopkConfig { max_expansions: 1 });
        assert!(err.is_err());
    }

    #[test]
    fn search_does_not_scan_past_what_it_needs() {
        // With certain tuples at the top, the search must terminate after
        // roughly k positions.
        let table = UncertainTable::new(
            (0..100u64)
                .map(|i| ttk_uncertain::UncertainTuple::new(i, 1000.0 - i as f64, 1.0).unwrap())
                .collect(),
            Vec::new(),
        )
        .unwrap();
        let answer = u_topk(&table, 5, &UTopkConfig::default()).unwrap().unwrap();
        assert!((answer.vector.probability() - 1.0).abs() < 1e-12);
        assert!(answer.deepest_position <= 6);
    }
}
