//! Comparator semantics and ground-truth baselines.
//!
//! * [`mod@u_topk`] — the category-(1) U-Topk semantics the paper argues against
//!   (highest-probability vector, regardless of how typical its score is).
//! * [`ranks`] — the category-(2) semantics U-kRanks and PT-k, provided for
//!   completeness of the comparison discussion in §1 and §6.
//! * [`exhaustive`] — possible-world enumeration used as ground truth in the
//!   test suite and in small examples.

pub mod exhaustive;
pub mod ranks;
pub mod u_topk;

pub use exhaustive::{exhaustive_topk_distribution, exhaustive_topk_membership, exhaustive_u_topk};
pub use ranks::{pt_k, rank_probabilities, u_kranks, RankWinner, TopkMembership};
pub use u_topk::{u_topk, UTopkAnswer, UTopkConfig};
