//! Category-(2) comparator semantics: U-kRanks and PT-k.
//!
//! The paper classifies existing top-k semantics into two categories. U-Topk
//! (category 1) is implemented in [`mod@super::u_topk`]; this module implements
//! the two best known category-(2) semantics so the workspace can reproduce
//! the paper's discussion of why they are unsuitable for applications that
//! need mutually compatible answers:
//!
//! * **U-kRanks** (Soliman et al.): for every rank position `i ∈ 1..=k`,
//!   return the tuple most likely to be *exactly* the i-th ranked tuple
//!   across possible worlds. The same tuple may win several ranks and the
//!   returned tuples may violate mutual-exclusion rules.
//! * **PT-k** (Hua et al.): return every tuple whose probability of being in
//!   the top-k (at any rank) is at least a user threshold `p`.
//!
//! Both are computed from the same quantity: `Pr(tuple t occupies rank i)`.
//! For the tuple at rank position `pos`, let the *blockers* be the tuples
//! ranked above `pos` that are not in `pos`'s ME group. Within one ME group
//! at most one blocker can appear, so the number of appearing blockers is a
//! sum of independent Bernoulli variables (one per group) and the rank
//! probability follows from a Poisson-binomial style dynamic program.

use std::collections::HashMap;

use ttk_uncertain::{Error, Result, TupleId, UncertainTable};

/// `Pr(tuple at rank position pos is ranked exactly i-th)` for `i ∈ 1..=k`,
/// as a vector indexed by `i − 1`.
pub fn rank_probabilities(table: &UncertainTable, pos: usize, k: usize) -> Vec<f64> {
    let tuple = table.tuple(pos);
    let own_group = table.group_index(pos);
    // Probability that each *group* contributes one appearing blocker.
    let mut group_mass: HashMap<usize, f64> = HashMap::new();
    for above in 0..pos {
        let g = table.group_index(above);
        if g == own_group {
            continue;
        }
        *group_mass.entry(g).or_insert(0.0) += table.tuple(above).prob();
    }
    // count[j] = Pr(exactly j blockers appear), built incrementally as a
    // Poisson-binomial over the groups. Buckets beyond min(k−1, #groups) are
    // never read, so mass flowing past `cap` is discarded.
    let cap = k.min(group_mass.len());
    let mut count = vec![0.0; cap + 1];
    count[0] = 1.0;
    for (_, q) in group_mass {
        for j in (0..=cap).rev() {
            let move_up = count[j] * q;
            count[j] *= 1.0 - q;
            if j < cap {
                count[j + 1] += move_up;
            }
        }
    }
    (0..k)
        .map(|i| {
            if i < count.len() {
                tuple.prob() * count[i]
            } else {
                0.0
            }
        })
        .collect()
}

/// One U-kRanks answer entry: the winning tuple for a rank position.
#[derive(Debug, Clone, PartialEq)]
pub struct RankWinner {
    /// Rank position (1-based, 1 = highest score).
    pub rank: usize,
    /// The winning tuple.
    pub tuple: TupleId,
    /// Probability that this tuple occupies exactly this rank.
    pub probability: f64,
}

/// Computes the U-kRanks answer: the most probable tuple for every rank
/// `1..=k`.
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] when `k == 0`.
pub fn u_kranks(table: &UncertainTable, k: usize) -> Result<Vec<RankWinner>> {
    if k == 0 {
        return Err(Error::InvalidParameter("k must be at least 1".into()));
    }
    let mut winners: Vec<Option<RankWinner>> = vec![None; k];
    for pos in 0..table.len() {
        let probs = rank_probabilities(table, pos, k);
        for (i, p) in probs.into_iter().enumerate() {
            if p <= 0.0 {
                continue;
            }
            let better = winners[i]
                .as_ref()
                .map(|w| p > w.probability)
                .unwrap_or(true);
            if better {
                winners[i] = Some(RankWinner {
                    rank: i + 1,
                    tuple: table.tuple(pos).id(),
                    probability: p,
                });
            }
        }
    }
    Ok(winners.into_iter().flatten().collect())
}

/// One PT-k answer entry.
#[derive(Debug, Clone, PartialEq)]
pub struct TopkMembership {
    /// The tuple.
    pub tuple: TupleId,
    /// Probability that the tuple is among the top-k of a random world.
    pub probability: f64,
}

/// Computes the PT-k answer: every tuple whose top-k membership probability
/// is at least `threshold`, in descending probability order.
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] when `k == 0` or the threshold is not
/// in `(0, 1]`.
pub fn pt_k(table: &UncertainTable, k: usize, threshold: f64) -> Result<Vec<TopkMembership>> {
    if k == 0 {
        return Err(Error::InvalidParameter("k must be at least 1".into()));
    }
    if !(threshold > 0.0 && threshold <= 1.0) {
        return Err(Error::InvalidParameter(format!(
            "PT-k threshold must be in (0, 1], got {threshold}"
        )));
    }
    let mut out = Vec::new();
    for pos in 0..table.len() {
        let membership: f64 = rank_probabilities(table, pos, k).iter().sum();
        if membership >= threshold {
            out.push(TopkMembership {
                tuple: table.tuple(pos).id(),
                probability: membership,
            });
        }
    }
    out.sort_by(|a, b| b.probability.total_cmp(&a.probability));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::exhaustive::exhaustive_topk_membership;

    fn soldier_table() -> UncertainTable {
        UncertainTable::builder()
            .tuple(1u64, 49.0, 0.4)
            .unwrap()
            .tuple(2u64, 60.0, 0.4)
            .unwrap()
            .tuple(3u64, 110.0, 0.4)
            .unwrap()
            .tuple(4u64, 80.0, 0.3)
            .unwrap()
            .tuple(5u64, 56.0, 1.0)
            .unwrap()
            .tuple(6u64, 58.0, 0.5)
            .unwrap()
            .tuple(7u64, 125.0, 0.3)
            .unwrap()
            .me_rule([2u64, 4, 7])
            .me_rule([3u64, 6])
            .build()
            .unwrap()
    }

    #[test]
    fn rank_probabilities_sum_to_topk_membership() {
        let table = soldier_table();
        for id in 1u64..=7 {
            let pos = table.position(id).unwrap();
            let membership: f64 = rank_probabilities(&table, pos, 7).iter().sum();
            let exact = exhaustive_topk_membership(&table, id, 7, 1 << 20).unwrap();
            // With k = table size, membership equals the existence
            // probability.
            assert!(
                (membership - exact).abs() < 1e-9,
                "tuple {id}: {membership} vs {exact}"
            );
        }
    }

    #[test]
    fn top2_membership_matches_exhaustive() {
        let table = soldier_table();
        for id in 1u64..=7 {
            let pos = table.position(id).unwrap();
            let membership: f64 = rank_probabilities(&table, pos, 2).iter().sum();
            let exact = exhaustive_topk_membership(&table, id, 2, 1 << 20).unwrap();
            assert!(
                (membership - exact).abs() < 1e-9,
                "tuple {id}: {membership} vs {exact}"
            );
        }
    }

    #[test]
    fn rank1_probability_of_the_top_tuple_is_its_existence_probability() {
        let table = soldier_table();
        let pos = table.position(7u64).unwrap();
        let probs = rank_probabilities(&table, pos, 2);
        assert!((probs[0] - 0.3).abs() < 1e-12);
    }

    #[test]
    fn u_kranks_returns_one_winner_per_rank() {
        let table = soldier_table();
        let winners = u_kranks(&table, 3).unwrap();
        assert_eq!(winners.len(), 3);
        for (i, w) in winners.iter().enumerate() {
            assert_eq!(w.rank, i + 1);
            assert!(w.probability > 0.0 && w.probability <= 1.0);
        }
        assert!(u_kranks(&table, 0).is_err());
    }

    #[test]
    fn u_kranks_may_repeat_tuples_across_ranks() {
        // A nearly-certain high scorer and many low-probability tuples: the
        // certain tuple wins rank 1, and (depending on the numbers) a tuple
        // may win several ranks — the artifact the paper criticises. We only
        // assert the weaker, structural property that winners need not be
        // distinct by constructing a case where rank-1 and rank-2 winners
        // coincide.
        let table = UncertainTable::builder()
            .tuple(1u64, 100.0, 0.5)
            .unwrap()
            .tuple(2u64, 90.0, 0.1)
            .unwrap()
            .tuple(3u64, 80.0, 0.95)
            .unwrap()
            .build()
            .unwrap();
        let winners = u_kranks(&table, 2).unwrap();
        assert_eq!(winners.len(), 2);
        // Rank 1: T1 has 0.5, T3 has 0.95*0.5*0.9 = 0.4275, T2 has 0.09.
        assert_eq!(winners[0].tuple, TupleId(1));
        // Rank 2: T3 wins with 0.95*(0.5*0.9 + 0.5*0.1) ≈ 0.475.
        assert_eq!(winners[1].tuple, TupleId(3));
    }

    #[test]
    fn pt_k_thresholds_membership() {
        let table = soldier_table();
        let all = pt_k(&table, 2, 1e-6).unwrap();
        assert!(!all.is_empty());
        // Probabilities are sorted descending and all above the threshold.
        for w in all.windows(2) {
            assert!(w[0].probability >= w[1].probability);
        }
        let strict = pt_k(&table, 2, 0.5).unwrap();
        assert!(strict.len() <= all.len());
        for m in &strict {
            assert!(m.probability >= 0.5);
        }
        assert!(pt_k(&table, 2, 0.0).is_err());
        assert!(pt_k(&table, 0, 0.5).is_err());
    }
}
