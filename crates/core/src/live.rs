//! Live datasets: append-only logs, sealed segments, and watermarked
//! snapshots.
//!
//! Every other dataset kind in this workspace is immutable at load. This
//! module is the growing kind: an [`AppendLog`] accepts out-of-order scored
//! tuples into a bounded staging buffer and, on [`AppendLog::seal`] (explicit
//! or automatic once staging reaches capacity), sorts the buffer into an
//! immutable **rank-ordered segment** and atomically publishes a new
//! epoch-numbered [`LiveSnapshot`] — an `Arc`'d list of sealed segments,
//! LSM-style. Readers clone the current snapshot under a short lock and then
//! scan entirely outside it, so:
//!
//! * **readers never block appenders** (and vice versa) — a scan holds only
//!   `Arc`s to segments that can never change;
//! * **every query sees one consistent watermark** — the segment list is
//!   swapped atomically, so a scan observes exactly the rows sealed up to
//!   one epoch, never a torn half-seal;
//! * staged-but-unsealed rows are invisible to queries, which is what makes
//!   the answer at a given epoch deterministic and cacheable.
//!
//! [`LiveDataset`] adapts a shared log to [`DatasetProvider`]: opening a
//! snapshot fuses its sealed segments under the same loser-tree k-way merge
//! the shard fabric uses, so the Theorem-2 rank scan, `execute_batch`,
//! `explain` and the serving daemon all work over live data unchanged. Since
//! [`rank_key`](ttk_uncertain::UncertainTuple::rank_key) is a total order
//! (ids are unique), merging per-segment sorted runs yields the exact
//! sequence a one-shot sort of all rows would — snapshot scans are
//! bit-identical to the equivalent static table regardless of how appends
//! were batched or interleaved with seals.
//!
//! Sealing also wakes subscribers: [`AppendLog::wait_for_epoch_beyond`] is
//! the blocking primitive the serving daemon's standing-query loop uses to
//! sleep until the watermark advances.
//!
//! Long-lived logs accumulate segments, and every scan re-merges all of
//! them. **Compaction** folds sealed segments back through the same k-way
//! merge into one segment and publishes the result as a new epoch — either
//! automatically when a seal would push the snapshot past a configured bound
//! ([`AppendLog::with_compact_at`]) or on demand ([`AppendLog::compact`],
//! the admin plane's `compact` verb). Because
//! [`rank_key`](ttk_uncertain::UncertainTuple::rank_key) is a total order,
//! the folded segment is bit-identical to the sequence the fragmented scan
//! produced, so compaction is invisible to queries except for the epoch
//! bump (and the speed).

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use ttk_uncertain::{Error, Result, ScanHandle, SourceTuple, TupleSource, VecSource};

use crate::session::{DatasetPlan, DatasetProvider, ScanPath};

/// ME-group probability mass may exceed 1.0 by at most this much (matches
/// the table builder's tolerance).
const GROUP_MASS_TOLERANCE: f64 = 1e-6;

/// What one [`AppendLog::append`] or [`AppendLog::seal`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppendOutcome {
    /// The epoch of the snapshot current after the call.
    pub epoch: u64,
    /// Rows staged (appended but not yet sealed) after the call.
    pub staged: u64,
    /// Rows visible to queries (across all sealed segments) after the call.
    pub sealed_rows: u64,
    /// True when this call sealed a segment (explicitly or because staging
    /// reached capacity) and advanced the epoch.
    pub sealed_now: bool,
}

/// One published watermark: the sealed segments visible at one epoch.
///
/// Immutable — the segment list is cloned out of the log under its lock and
/// every segment is an `Arc` to a rank-ordered `Vec` that is never mutated
/// after sealing. Scans opened from a snapshot are unaffected by concurrent
/// appends and seals.
#[derive(Debug, Clone)]
pub struct LiveSnapshot {
    epoch: u64,
    segments: Vec<Arc<Vec<SourceTuple>>>,
    rows: usize,
    compacted_epoch: u64,
}

impl LiveSnapshot {
    /// The snapshot's epoch: 0 before the first seal, +1 per seal.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Epoch at which the log's segments were most recently compacted
    /// (`0` when the log was never compacted).
    pub fn compacted_epoch(&self) -> u64 {
        self.compacted_epoch
    }

    /// Number of sealed segments under the merge.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Total rows across all sealed segments.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Opens the snapshot as a rank-ordered scan: each sealed segment
    /// replays as its own source, fused under the loser-tree k-way merge
    /// (one segment or none short-circuits to a single stream).
    pub fn open(&self) -> ScanHandle {
        let mut sources: Vec<VecSource> = self
            .segments
            .iter()
            .map(|segment| VecSource::new((**segment).clone()))
            .collect();
        match sources.len() {
            0 => ScanHandle::single(VecSource::new(Vec::new())),
            1 => ScanHandle::single(sources.remove(0)),
            _ => ScanHandle::merged(sources),
        }
    }
}

/// The mutable half of an [`AppendLog`], guarded by one mutex.
struct LogState {
    /// Rows appended but not yet sealed — invisible to queries.
    staging: Vec<SourceTuple>,
    /// Every tuple id ever accepted (staged or sealed) — appends must be
    /// unique so rank order stays a total order.
    seen_ids: HashSet<u64>,
    /// Cumulative probability mass per shared ME group, across staged and
    /// sealed rows. Masses only accumulate: a group spans segments, so its
    /// bound must hold over the log's whole lifetime.
    group_mass: HashMap<u64, f64>,
    /// The current published watermark.
    snapshot: Arc<LiveSnapshot>,
}

/// An append-only store of scored tuples with atomically published,
/// epoch-numbered snapshots.
///
/// Appends land in a bounded staging buffer; [`seal`](AppendLog::seal)
/// (explicit, or automatic once staging reaches the configured capacity)
/// sorts the buffer into an immutable rank-ordered segment and publishes a
/// new [`LiveSnapshot`] whose epoch is one higher. Validation happens at
/// append time and is batch-atomic: a batch that contains a duplicate id or
/// overfills an ME group's probability mass is rejected whole, leaving the
/// log unchanged.
///
/// The log is fully thread-safe; share it behind an `Arc` between appenders,
/// a [`LiveDataset`], and subscription loops.
pub struct AppendLog {
    state: Mutex<LogState>,
    sealed: Condvar,
    staging_capacity: usize,
    compact_at: usize,
    subscribers: AtomicU64,
}

impl AppendLog {
    /// A new, empty log that auto-seals whenever staging reaches
    /// `staging_capacity` rows (clamped to at least 1).
    pub fn new(staging_capacity: usize) -> Self {
        AppendLog {
            state: Mutex::new(LogState {
                staging: Vec::new(),
                seen_ids: HashSet::new(),
                group_mass: HashMap::new(),
                snapshot: Arc::new(LiveSnapshot {
                    epoch: 0,
                    segments: Vec::new(),
                    rows: 0,
                    compacted_epoch: 0,
                }),
            }),
            sealed: Condvar::new(),
            staging_capacity: staging_capacity.max(1),
            compact_at: 0,
            subscribers: AtomicU64::new(0),
        }
    }

    /// Enables automatic LSM-style compaction: whenever a seal would publish
    /// more than `bound` segments, the oldest segments are folded through
    /// the k-way merge into one so the snapshot lands exactly at `bound`
    /// (clamped to at least 2). `0` disables auto-compaction (the default);
    /// [`AppendLog::compact`] stays available either way.
    pub fn with_compact_at(mut self, bound: usize) -> Self {
        self.compact_at = if bound == 0 { 0 } else { bound.max(2) };
        self
    }

    /// The staging capacity that triggers an automatic seal.
    pub fn staging_capacity(&self) -> usize {
        self.staging_capacity
    }

    /// The segment-count bound that triggers automatic compaction on seal
    /// (`0` = auto-compaction disabled).
    pub fn compact_at(&self) -> usize {
        self.compact_at
    }

    /// Appends a batch of rows to the staging buffer, sealing automatically
    /// when the buffer reaches capacity.
    ///
    /// The batch is atomic: it is validated in full first (unique ids across
    /// the batch, the staged rows and every sealed segment; shared ME-group
    /// probability mass bounded by 1), and only then committed — a rejected
    /// batch leaves the log exactly as it was.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] for a duplicate tuple id or an
    /// ME group whose cumulative probability mass would exceed 1.
    pub fn append(&self, rows: Vec<SourceTuple>) -> Result<AppendOutcome> {
        let mut state = self.lock_state();

        // Phase 1: validate the whole batch against current state.
        let mut batch_ids = HashSet::with_capacity(rows.len());
        let mut batch_mass: HashMap<u64, f64> = HashMap::new();
        for row in &rows {
            let id = row.tuple.id().raw();
            if state.seen_ids.contains(&id) || !batch_ids.insert(id) {
                return Err(Error::InvalidParameter(format!(
                    "append rejected: tuple id {id} already exists in the log \
                     (ids must be unique across all appends)"
                )));
            }
            if let ttk_uncertain::GroupKey::Shared(group) = row.group {
                let mass = batch_mass.entry(group).or_insert(0.0);
                *mass += row.tuple.prob();
                let total = state.group_mass.get(&group).copied().unwrap_or(0.0) + *mass;
                if total > 1.0 + GROUP_MASS_TOLERANCE {
                    return Err(Error::InvalidParameter(format!(
                        "append rejected: ME group {group} probability mass \
                         would reach {total} (> 1); mutually exclusive \
                         alternatives cannot exceed total probability 1"
                    )));
                }
            }
        }

        // Phase 2: commit.
        state.seen_ids.extend(batch_ids);
        for (group, mass) in batch_mass {
            *state.group_mass.entry(group).or_insert(0.0) += mass;
        }
        state.staging.extend(rows);

        let sealed_now = state.staging.len() >= self.staging_capacity;
        if sealed_now {
            self.seal_locked(&mut state);
        }
        Ok(self.outcome(&state, sealed_now))
    }

    /// Seals the staging buffer into a new immutable segment and publishes
    /// the next epoch's snapshot, waking every waiting subscriber. A no-op
    /// (same epoch, nothing woken) when staging is empty.
    pub fn seal(&self) -> AppendOutcome {
        let mut state = self.lock_state();
        if state.staging.is_empty() {
            return self.outcome(&state, false);
        }
        self.seal_locked(&mut state);
        self.outcome(&state, true)
    }

    /// The currently published snapshot (cheap: one `Arc` clone under the
    /// lock).
    pub fn snapshot(&self) -> Arc<LiveSnapshot> {
        Arc::clone(&self.lock_state().snapshot)
    }

    /// The current epoch (0 until the first seal).
    pub fn epoch(&self) -> u64 {
        self.lock_state().snapshot.epoch
    }

    /// Rows staged but not yet sealed (invisible to queries).
    pub fn staged_rows(&self) -> usize {
        self.lock_state().staging.len()
    }

    /// Rows visible to queries in the current snapshot.
    pub fn total_rows(&self) -> usize {
        self.lock_state().snapshot.rows
    }

    /// Blocks until a snapshot with an epoch strictly beyond `epoch` is
    /// published, or `timeout` elapses. Returns the newer snapshot, or
    /// `None` on timeout — the caller's cue to re-check its own stop
    /// conditions and wait again.
    pub fn wait_for_epoch_beyond(
        &self,
        epoch: u64,
        timeout: Duration,
    ) -> Option<Arc<LiveSnapshot>> {
        let deadline = Instant::now() + timeout;
        let mut state = self.lock_state();
        loop {
            if state.snapshot.epoch > epoch {
                return Some(Arc::clone(&state.snapshot));
            }
            let remaining = deadline.checked_duration_since(Instant::now())?;
            let (next, wait) = self
                .sealed
                .wait_timeout(state, remaining)
                .expect("append log poisoned");
            state = next;
            if wait.timed_out() && state.snapshot.epoch <= epoch {
                return None;
            }
        }
    }

    /// Registers a standing subscriber; the count drops when the returned
    /// guard does. Purely diagnostic — the daemon's log lines report how
    /// many watchers a live dataset has.
    pub fn subscribe(self: &Arc<Self>) -> SubscriberGuard {
        self.subscribers.fetch_add(1, Ordering::Relaxed);
        SubscriberGuard {
            log: Arc::clone(self),
        }
    }

    /// Number of live subscriber guards.
    pub fn subscriber_count(&self) -> u64 {
        self.subscribers.load(Ordering::Relaxed)
    }

    fn lock_state(&self) -> std::sync::MutexGuard<'_, LogState> {
        self.state.lock().expect("append log poisoned")
    }

    /// Folds every sealed segment through the k-way merge into one and
    /// publishes the result as a new epoch, waking every waiting subscriber.
    /// Staged rows are untouched (they are not sealed — compaction never
    /// changes what queries can see). A no-op when the snapshot already has
    /// at most one segment.
    ///
    /// In-flight scans keep their `Arc`'d pre-compaction snapshot; the
    /// merged segment is bit-identical to the fragmented scan because
    /// [`rank_key`](ttk_uncertain::UncertainTuple::rank_key) is a total
    /// order.
    pub fn compact(&self) -> CompactionOutcome {
        let mut state = self.lock_state();
        let segments_before = state.snapshot.segments.len();
        if segments_before <= 1 {
            return CompactionOutcome {
                epoch: state.snapshot.epoch,
                segments_before,
                segments_after: segments_before,
                rows: state.snapshot.rows,
                compacted_now: false,
            };
        }
        let folded = Arc::new(merged_rows(&state.snapshot.segments));
        let rows = folded.len();
        let epoch = state.snapshot.epoch + 1;
        state.snapshot = Arc::new(LiveSnapshot {
            epoch,
            segments: vec![folded],
            rows,
            compacted_epoch: epoch,
        });
        self.sealed.notify_all();
        CompactionOutcome {
            epoch,
            segments_before,
            segments_after: 1,
            rows,
            compacted_now: true,
        }
    }

    /// Sorts staging into a segment and publishes the next snapshot,
    /// auto-compacting the oldest segments first when the result would
    /// exceed the configured bound. Caller holds the lock and guarantees
    /// staging is non-empty.
    fn seal_locked(&self, state: &mut LogState) {
        let mut rows = std::mem::take(&mut state.staging);
        rows.sort_by_key(|row| row.tuple.rank_key());
        let mut segments = state.snapshot.segments.clone();
        segments.push(Arc::new(rows));
        let next_epoch = state.snapshot.epoch + 1;
        let mut compacted_epoch = state.snapshot.compacted_epoch;
        if self.compact_at > 0 && segments.len() > self.compact_at {
            // Fold the oldest segments into one so the published snapshot
            // lands exactly at the bound — one epoch, never a torn
            // intermediate state.
            let fold = segments.len() - self.compact_at + 1;
            let folded = Arc::new(merged_rows(&segments[..fold]));
            segments.splice(..fold, [folded]);
            compacted_epoch = next_epoch;
        }
        let rows = segments.iter().map(|segment| segment.len()).sum();
        state.snapshot = Arc::new(LiveSnapshot {
            epoch: next_epoch,
            segments,
            rows,
            compacted_epoch,
        });
        self.sealed.notify_all();
    }

    fn outcome(&self, state: &LogState, sealed_now: bool) -> AppendOutcome {
        AppendOutcome {
            epoch: state.snapshot.epoch,
            staged: state.staging.len() as u64,
            sealed_rows: state.snapshot.rows as u64,
            sealed_now,
        }
    }
}

impl std::fmt::Debug for AppendLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.lock_state();
        f.debug_struct("AppendLog")
            .field("epoch", &state.snapshot.epoch)
            .field("sealed_rows", &state.snapshot.rows)
            .field("staged", &state.staging.len())
            .field("staging_capacity", &self.staging_capacity)
            .finish()
    }
}

/// What one [`AppendLog::compact`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactionOutcome {
    /// The epoch of the snapshot current after the call (advanced by one
    /// when compaction ran, unchanged otherwise).
    pub epoch: u64,
    /// Sealed segments before the call.
    pub segments_before: usize,
    /// Sealed segments after the call.
    pub segments_after: usize,
    /// Rows visible to queries after the call (compaction never changes
    /// this).
    pub rows: usize,
    /// True when the call actually folded segments and advanced the epoch;
    /// false for the ≤1-segment no-op.
    pub compacted_now: bool,
}

/// Replays `segments` (each rank-ordered) through the loser-tree k-way merge
/// into one rank-ordered row vector — the same fuse a snapshot scan
/// performs, so the result is bit-identical to scanning the segments
/// fragmented.
fn merged_rows(segments: &[Arc<Vec<SourceTuple>>]) -> Vec<SourceTuple> {
    let mut sources: Vec<VecSource> = segments
        .iter()
        .map(|segment| VecSource::new((**segment).clone()))
        .collect();
    let mut handle = match sources.len() {
        0 => return Vec::new(),
        1 => ScanHandle::single(sources.remove(0)),
        _ => ScanHandle::merged(sources),
    };
    let mut rows = Vec::with_capacity(segments.iter().map(|segment| segment.len()).sum());
    while let Some(tuple) = handle
        .next_tuple()
        .expect("in-memory segment merge cannot fail")
    {
        rows.push(tuple);
    }
    rows
}

/// Decrements the subscriber count of an [`AppendLog`] on drop.
#[derive(Debug)]
pub struct SubscriberGuard {
    log: Arc<AppendLog>,
}

impl Drop for SubscriberGuard {
    fn drop(&mut self) {
        self.log.subscribers.fetch_sub(1, Ordering::Relaxed);
    }
}

/// A growing dataset: adapts a shared [`AppendLog`] to [`DatasetProvider`],
/// so a live log plugs into `Session::execute`, `execute_batch`, `explain`
/// and the serving daemon exactly like any static dataset.
///
/// Every open takes the log's *current* snapshot — one consistent
/// watermark; concurrent appends and seals affect only later opens.
#[derive(Debug, Clone)]
pub struct LiveDataset {
    log: Arc<AppendLog>,
}

impl LiveDataset {
    /// Wraps a shared log.
    pub fn new(log: Arc<AppendLog>) -> Self {
        LiveDataset { log }
    }

    /// The shared log behind this dataset.
    pub fn log(&self) -> &Arc<AppendLog> {
        &self.log
    }
}

impl DatasetProvider for LiveDataset {
    fn open(&self) -> Result<ScanHandle> {
        Ok(self.log.snapshot().open())
    }

    fn plan(&self) -> DatasetPlan {
        let snapshot = self.log.snapshot();
        DatasetPlan {
            path: ScanPath::Live {
                segments: snapshot.segment_count(),
                epoch: snapshot.epoch(),
                compacted_epoch: snapshot.compacted_epoch(),
            },
            rows: Some(snapshot.rows()),
        }
    }

    fn epoch(&self) -> u64 {
        self.log.epoch()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ttk_uncertain::{TupleSource, UncertainTuple};

    fn row(id: u64, score: f64, prob: f64) -> SourceTuple {
        SourceTuple::independent(UncertainTuple::new(id, score, prob).expect("valid tuple"))
    }

    fn grouped(id: u64, score: f64, prob: f64, group: u64) -> SourceTuple {
        SourceTuple::grouped(
            UncertainTuple::new(id, score, prob).expect("valid tuple"),
            group,
        )
    }

    fn drain(mut handle: ScanHandle) -> Vec<SourceTuple> {
        let mut rows = Vec::new();
        while let Some(tuple) = handle.next_tuple().expect("scan") {
            rows.push(tuple);
        }
        rows
    }

    #[test]
    fn empty_log_opens_as_an_empty_epoch_zero_scan() {
        let log = AppendLog::new(16);
        let snapshot = log.snapshot();
        assert_eq!(snapshot.epoch(), 0);
        assert_eq!(snapshot.rows(), 0);
        assert!(drain(snapshot.open()).is_empty());
        // Sealing nothing is a visible no-op.
        let outcome = log.seal();
        assert_eq!(outcome.epoch, 0);
        assert!(!outcome.sealed_now);
    }

    #[test]
    fn staged_rows_stay_invisible_until_sealed() {
        let log = AppendLog::new(16);
        let outcome = log
            .append(vec![row(1, 9.0, 0.5), row(2, 7.0, 1.0)])
            .expect("appends");
        assert_eq!(outcome.staged, 2);
        assert_eq!(outcome.sealed_rows, 0);
        assert!(!outcome.sealed_now);
        assert_eq!(log.snapshot().rows(), 0);

        let sealed = log.seal();
        assert!(sealed.sealed_now);
        assert_eq!(sealed.epoch, 1);
        assert_eq!(sealed.sealed_rows, 2);
        assert_eq!(sealed.staged, 0);

        let rows = drain(log.snapshot().open());
        assert_eq!(rows.len(), 2);
        // Rank order: higher score first.
        assert_eq!(rows[0].tuple.id().raw(), 1);
        assert_eq!(rows[1].tuple.id().raw(), 2);
    }

    #[test]
    fn merge_across_segments_matches_a_single_sort() {
        let log = AppendLog::new(64);
        // Interleaved scores across three segments.
        log.append(vec![row(1, 10.0, 0.5), row(2, 4.0, 0.5)])
            .expect("appends");
        log.seal();
        log.append(vec![row(3, 7.0, 0.5)]).expect("appends");
        log.seal();
        log.append(vec![row(4, 12.0, 0.5), row(5, 5.0, 0.5)])
            .expect("appends");
        log.seal();

        let snapshot = log.snapshot();
        assert_eq!(snapshot.epoch(), 3);
        assert_eq!(snapshot.segment_count(), 3);
        let merged: Vec<u64> = drain(snapshot.open())
            .iter()
            .map(|r| r.tuple.id().raw())
            .collect();
        assert_eq!(merged, vec![4, 1, 3, 5, 2]);
    }

    #[test]
    fn auto_seal_fires_at_staging_capacity() {
        let log = AppendLog::new(2);
        let first = log.append(vec![row(1, 1.0, 0.5)]).expect("appends");
        assert!(!first.sealed_now);
        let second = log.append(vec![row(2, 2.0, 0.5)]).expect("appends");
        assert!(second.sealed_now);
        assert_eq!(second.epoch, 1);
        assert_eq!(second.sealed_rows, 2);
        // A batch larger than capacity seals in one go.
        let third = log
            .append(vec![row(3, 3.0, 0.5), row(4, 4.0, 0.5), row(5, 5.0, 0.5)])
            .expect("appends");
        assert!(third.sealed_now);
        assert_eq!(third.epoch, 2);
        assert_eq!(third.sealed_rows, 5);
    }

    #[test]
    fn duplicate_ids_and_group_overflow_reject_the_whole_batch() {
        let log = AppendLog::new(16);
        log.append(vec![grouped(1, 9.0, 0.6, 7)]).expect("appends");
        log.seal();

        // Duplicate against a sealed row: batch rejected whole.
        let err = log
            .append(vec![row(2, 5.0, 0.5), row(1, 4.0, 0.5)])
            .expect_err("duplicate id");
        assert!(err.to_string().contains("id 1"), "got: {err}");
        assert_eq!(log.staged_rows(), 0);

        // Duplicate within one batch.
        assert!(log
            .append(vec![row(3, 5.0, 0.5), row(3, 4.0, 0.5)])
            .is_err());

        // Group mass 0.6 (sealed) + 0.5 > 1: rejected, log unchanged.
        let err = log
            .append(vec![grouped(4, 3.0, 0.5, 7)])
            .expect_err("group overflow");
        assert!(err.to_string().contains("ME group 7"), "got: {err}");
        assert_eq!(log.staged_rows(), 0);

        // Mass that still fits is accepted.
        log.append(vec![grouped(5, 3.0, 0.4, 7)]).expect("fits");
    }

    #[test]
    fn wait_for_epoch_beyond_wakes_on_seal_and_times_out_otherwise() {
        let log = Arc::new(AppendLog::new(16));
        assert!(log
            .wait_for_epoch_beyond(0, Duration::from_millis(20))
            .is_none());

        let appender = Arc::clone(&log);
        let handle = std::thread::spawn(move || {
            appender.append(vec![row(1, 1.0, 0.5)]).expect("appends");
            appender.seal();
        });
        let snapshot = log
            .wait_for_epoch_beyond(0, Duration::from_secs(10))
            .expect("woken by the seal");
        assert_eq!(snapshot.epoch(), 1);
        handle.join().expect("appender");
    }

    #[test]
    fn subscriber_guards_track_the_count() {
        let log = Arc::new(AppendLog::new(16));
        assert_eq!(log.subscriber_count(), 0);
        let a = log.subscribe();
        let b = log.subscribe();
        assert_eq!(log.subscriber_count(), 2);
        drop(a);
        assert_eq!(log.subscriber_count(), 1);
        drop(b);
        assert_eq!(log.subscriber_count(), 0);
    }

    #[test]
    fn on_demand_compaction_folds_to_one_segment_and_bumps_the_epoch() {
        let log = AppendLog::new(64);
        for (id, score) in [(1u64, 10.0), (2, 4.0), (3, 7.0), (4, 12.0)] {
            log.append(vec![row(id, score, 0.5)]).expect("appends");
            log.seal();
        }
        // One staged row proves compaction never touches staging.
        log.append(vec![row(5, 1.0, 0.5)]).expect("appends");
        let fragmented: Vec<u64> = drain(log.snapshot().open())
            .iter()
            .map(|r| r.tuple.id().raw())
            .collect();

        let outcome = log.compact();
        assert!(outcome.compacted_now);
        assert_eq!(outcome.epoch, 5);
        assert_eq!(outcome.segments_before, 4);
        assert_eq!(outcome.segments_after, 1);
        assert_eq!(outcome.rows, 4);
        assert_eq!(log.staged_rows(), 1);

        let snapshot = log.snapshot();
        assert_eq!(snapshot.segment_count(), 1);
        assert_eq!(snapshot.epoch(), 5);
        assert_eq!(snapshot.compacted_epoch(), 5);
        let compacted: Vec<u64> = drain(snapshot.open())
            .iter()
            .map(|r| r.tuple.id().raw())
            .collect();
        assert_eq!(compacted, fragmented);

        // A second compact is a visible no-op: nothing to fold.
        let outcome = log.compact();
        assert!(!outcome.compacted_now);
        assert_eq!(outcome.epoch, 5);
        assert_eq!(outcome.segments_after, 1);
    }

    #[test]
    fn auto_compaction_holds_the_segment_bound_across_seals() {
        let log = AppendLog::new(64).with_compact_at(3);
        assert_eq!(log.compact_at(), 3);
        for id in 0..10u64 {
            log.append(vec![row(id, id as f64, 0.5)]).expect("appends");
            log.seal();
            assert!(
                log.snapshot().segment_count() <= 3,
                "seal {} published {} segments",
                id,
                log.snapshot().segment_count()
            );
        }
        let snapshot = log.snapshot();
        // Each seal is exactly one epoch, compaction or not.
        assert_eq!(snapshot.epoch(), 10);
        assert_eq!(snapshot.segment_count(), 3);
        // The fourth seal was the first to fold; the tenth was the latest.
        assert_eq!(snapshot.compacted_epoch(), 10);
        let ids: Vec<u64> = drain(snapshot.open())
            .iter()
            .map(|r| r.tuple.id().raw())
            .collect();
        assert_eq!(ids, (0..10u64).rev().collect::<Vec<_>>());
    }

    #[test]
    fn compaction_wakes_epoch_subscribers() {
        let log = Arc::new(AppendLog::new(64));
        for id in 0..3u64 {
            log.append(vec![row(id, id as f64, 0.5)]).expect("appends");
            log.seal();
        }
        let compactor = Arc::clone(&log);
        let handle = std::thread::spawn(move || compactor.compact());
        let snapshot = log
            .wait_for_epoch_beyond(3, Duration::from_secs(10))
            .expect("woken by the compaction");
        assert_eq!(snapshot.epoch(), 4);
        assert_eq!(snapshot.segment_count(), 1);
        assert!(handle.join().expect("compactor").compacted_now);
    }

    #[test]
    fn live_dataset_plans_the_live_path_and_reports_its_epoch() {
        let log = Arc::new(AppendLog::new(16));
        log.append(vec![row(1, 9.0, 0.5)]).expect("appends");
        log.seal();
        let provider = LiveDataset::new(Arc::clone(&log));
        let plan = provider.plan();
        assert_eq!(
            plan.path,
            ScanPath::Live {
                segments: 1,
                epoch: 1,
                compacted_epoch: 0
            }
        );
        assert_eq!(plan.rows, Some(1));
        assert_eq!(provider.epoch(), 1);

        let dataset = crate::session::Dataset::from_provider(provider).with_label("feed");
        assert_eq!(dataset.epoch(), 1);
        log.append(vec![row(2, 8.0, 0.5)]).expect("appends");
        log.seal();
        assert_eq!(dataset.epoch(), 2);
    }
}
