//! Server-resident datasets and the concurrent result cache behind `ttk serve`.
//!
//! A long-lived query daemon keeps two pieces of shared state:
//!
//! * a [`DatasetRegistry`] — the named, `Arc`-shared [`Dataset`]s resident in
//!   the process. The daemon loads its startup inputs once, warms them, then
//!   serves; the wire-v6 admin plane can additionally register, reload and
//!   unregister datasets while the daemon runs. Mutations swap whole
//!   `Arc<Dataset>` handles under a short write lock, so they are
//!   **epoch-safe**: a query that resolved its dataset before the swap
//!   finishes on the old handle, and the swapped-in dataset has a fresh
//!   process-unique id, so stale cache entries stop matching structurally.
//! * a [`ResultCache`] — a sharded, LRU-bounded map from a query's full
//!   shape ([`CacheKey`]) to its finished [`QueryAnswer`]. Repeated queries
//!   skip execution entirely and ship the cached answer, bit-identical to
//!   the cold run (the cache stores the answer the executor produced, it
//!   never re-derives anything). Entries may additionally carry a wall-clock
//!   TTL ([`ResultCache::with_ttl`]) for relations that refresh out-of-band.
//!
//! ## Cache semantics
//!
//! The cache is *lossy by design*: a concurrent miss on the same key may run
//! the query twice (both workers execute, both insert, last write wins).
//! That is safe — execution is deterministic for a fixed dataset and query,
//! so both answers are identical — and it keeps the fast path free of any
//! per-key in-flight bookkeeping. The bound is enforced per shard: the
//! per-shard capacities sum to exactly the configured capacity, and an
//! insert into a full shard evicts that shard's least-recently-used entry.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

use ttk_uncertain::{CoalescePolicy, Error, Result};

use crate::live::{AppendLog, LiveDataset};
use crate::query::{Algorithm, QueryAnswer, TopkQuery};
use crate::session::Dataset;

/// Re-imports a dataset from its original source — the hot-reload closure a
/// file-backed registration carries so the admin plane's `reload` verb can
/// rebuild it without the registry (or core) knowing how it was imported.
pub type DatasetLoader = Box<dyn Fn() -> Result<Dataset> + Send + Sync>;

/// Imports a dataset from a server-side path — installed once at daemon
/// startup ([`DatasetRegistry::set_importer`]) and invoked by the admin
/// plane's `register` verb. Returns the loaded dataset plus the
/// [`DatasetLoader`] that re-imports it for later `reload`s.
pub type DatasetImporter = Box<dyn Fn(&str) -> Result<(Dataset, DatasetLoader)> + Send + Sync>;

/// One resident dataset: its name, the queryable [`Dataset`], for live
/// datasets the shared [`AppendLog`] the append/subscribe paths operate on,
/// and for file-backed datasets the loader `reload` re-imports through.
struct Entry {
    name: String,
    dataset: Arc<Dataset>,
    live: Option<Arc<AppendLog>>,
    loader: Option<DatasetLoader>,
}

/// The named datasets resident in a serving process.
///
/// Insertion-ordered; names are unique. Built at daemon startup and shared
/// across workers behind one `Arc<DatasetRegistry>`; the admin plane
/// mutates it through the interior lock ([`DatasetRegistry::admin_register`],
/// [`reload`](DatasetRegistry::reload),
/// [`unregister`](DatasetRegistry::unregister)) while queries keep resolving
/// concurrently. Live datasets mutate through their interior [`AppendLog`],
/// not through the registry.
#[derive(Default)]
pub struct DatasetRegistry {
    entries: RwLock<Vec<Entry>>,
    importer: Option<DatasetImporter>,
}

impl DatasetRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        DatasetRegistry::default()
    }

    /// Installs the importer the admin plane's `register` verb uses to load
    /// datasets from server-side paths. Called once at daemon startup,
    /// before the registry is shared; a registry without an importer
    /// refuses admin registrations.
    pub fn set_importer(&mut self, importer: DatasetImporter) {
        self.importer = Some(importer);
    }

    /// Registers `dataset` under `name` and returns its process-unique
    /// dataset id (the id cache keys are derived from).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] when a dataset with the same name
    /// is already registered — silently shadowing a resident dataset would
    /// leave stale cache entries answering for the wrong data.
    pub fn register(&self, name: impl Into<String>, dataset: Dataset) -> Result<u64> {
        self.push_entry(name.into(), dataset, None, None)
    }

    /// Registers `dataset` under `name` with the loader that re-imports it,
    /// enabling the admin plane's `reload` verb for this entry.
    ///
    /// # Errors
    ///
    /// As [`DatasetRegistry::register`].
    pub fn register_with_loader(
        &self,
        name: impl Into<String>,
        dataset: Dataset,
        loader: DatasetLoader,
    ) -> Result<u64> {
        self.push_entry(name.into(), dataset, None, Some(loader))
    }

    /// Registers `log` under `name` as a live dataset (a [`LiveDataset`]
    /// provider labelled `name`) and returns its process-unique dataset id.
    /// The log stays shared: the daemon's append and subscription paths
    /// reach it through [`DatasetRegistry::live`].
    ///
    /// # Errors
    ///
    /// As [`DatasetRegistry::register`].
    pub fn register_live(&self, name: impl Into<String>, log: Arc<AppendLog>) -> Result<u64> {
        let name = name.into();
        let dataset =
            Dataset::from_provider(LiveDataset::new(Arc::clone(&log))).with_label(name.clone());
        self.push_entry(name, dataset, Some(log), None)
    }

    /// Imports the dataset at the server-side path `path` through the
    /// installed importer and makes it resident under `name` — the admin
    /// plane's `register` verb. The duplicate-name check that guards
    /// startup registration applies here identically.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] when no importer is installed or
    /// `name` already names a resident dataset, and whatever the import
    /// itself fails with.
    pub fn admin_register(&self, name: &str, path: &str) -> Result<u64> {
        let importer = self.importer.as_ref().ok_or_else(|| {
            Error::InvalidParameter(
                "this server cannot import datasets over the admin plane \
                 (no importer installed)"
                    .into(),
            )
        })?;
        // Fast-fail on a duplicate before paying for the import; the
        // insert below re-checks authoritatively under the write lock.
        if self.get(name).is_some() {
            return Err(duplicate_name(name));
        }
        let (dataset, loader) = importer(path)?;
        self.push_entry(
            name.to_string(),
            dataset.with_label(name),
            None,
            Some(loader),
        )
    }

    /// Re-imports a file-backed dataset through its registration-time
    /// loader and swaps it in under the same name, returning the fresh
    /// dataset handle. In-flight queries finish on the old `Arc`'d dataset;
    /// the swapped-in dataset has a new process-unique id, so every cached
    /// answer for the old data stops matching structurally.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] when `name` is not resident, is
    /// live (appends, not reloads, move live data), or was registered
    /// without a loader, and whatever the re-import itself fails with.
    pub fn reload(&self, name: &str) -> Result<Arc<Dataset>> {
        // Load under the read lock: queries (also readers) proceed
        // concurrently, and the loader stays borrowed from the entry.
        let fresh = {
            let entries = self.read_entries();
            let entry = entries
                .iter()
                .find(|entry| entry.name == name)
                .ok_or_else(|| no_such_name(name))?;
            if entry.live.is_some() {
                return Err(Error::InvalidParameter(format!(
                    "dataset `{name}` is live; reload applies to file-backed \
                     datasets (live data moves by append/seal)"
                )));
            }
            let loader = entry.loader.as_ref().ok_or_else(|| {
                Error::InvalidParameter(format!(
                    "dataset `{name}` has no reload source (it was registered \
                     without a loader)"
                ))
            })?;
            loader()?.with_label(name)
        };
        let fresh = Arc::new(fresh);
        let mut entries = self.write_entries();
        let entry = entries
            .iter_mut()
            .find(|entry| entry.name == name)
            .ok_or_else(|| no_such_name(name))?;
        entry.dataset = Arc::clone(&fresh);
        Ok(fresh)
    }

    /// Removes the resident dataset named `name`. In-flight queries (and,
    /// for live datasets, subscriptions) finish on the `Arc` handles they
    /// already hold; new lookups miss immediately.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] when `name` is not resident.
    pub fn unregister(&self, name: &str) -> Result<()> {
        let mut entries = self.write_entries();
        let index = entries
            .iter()
            .position(|entry| entry.name == name)
            .ok_or_else(|| no_such_name(name))?;
        entries.remove(index);
        Ok(())
    }

    fn push_entry(
        &self,
        name: String,
        dataset: Dataset,
        live: Option<Arc<AppendLog>>,
        loader: Option<DatasetLoader>,
    ) -> Result<u64> {
        let mut entries = self.write_entries();
        if entries.iter().any(|entry| entry.name == name) {
            return Err(duplicate_name(&name));
        }
        let id = dataset.id();
        entries.push(Entry {
            name,
            dataset: Arc::new(dataset),
            live,
            loader,
        });
        Ok(id)
    }

    /// Looks up a resident dataset by name. The returned handle stays valid
    /// across concurrent reloads/unregisters — it is the dataset as of the
    /// lookup.
    pub fn get(&self, name: &str) -> Option<Arc<Dataset>> {
        self.read_entries()
            .iter()
            .find(|entry| entry.name == name)
            .map(|entry| Arc::clone(&entry.dataset))
    }

    /// Looks up the append log behind a resident **live** dataset by name
    /// (`None` when the name is unknown or names a static dataset).
    pub fn live(&self, name: &str) -> Option<Arc<AppendLog>> {
        self.read_entries()
            .iter()
            .find(|entry| entry.name == name)
            .and_then(|entry| entry.live.as_ref().map(Arc::clone))
    }

    /// The registered names, in registration order.
    pub fn names(&self) -> Vec<String> {
        self.read_entries()
            .iter()
            .map(|entry| entry.name.clone())
            .collect()
    }

    /// Number of resident datasets.
    pub fn len(&self) -> usize {
        self.read_entries().len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.read_entries().is_empty()
    }

    fn read_entries(&self) -> std::sync::RwLockReadGuard<'_, Vec<Entry>> {
        self.entries.read().expect("dataset registry poisoned")
    }

    fn write_entries(&self) -> std::sync::RwLockWriteGuard<'_, Vec<Entry>> {
        self.entries.write().expect("dataset registry poisoned")
    }
}

fn duplicate_name(name: &str) -> Error {
    Error::InvalidParameter(format!("dataset `{name}` is already registered"))
}

fn no_such_name(name: &str) -> Error {
    Error::InvalidParameter(format!("no dataset named `{name}` is resident"))
}

/// The full query shape a cached answer is keyed on.
///
/// The issue's headline key is (dataset id, algorithm, k, pτ), but any query
/// knob that changes the answer must participate — otherwise a `max_lines`
/// or coalesce-policy change would be answered from stale state. Floats are
/// keyed by their IEEE-754 bits, consistent with the wire codec's
/// bit-identical discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Process-unique id of the resident dataset ([`Dataset::id`]).
    pub dataset: u64,
    /// The dataset epoch the answer was computed at ([`Dataset::epoch`]).
    /// Static datasets stay at 0 forever; live datasets advance per seal,
    /// so an answer cached at one watermark is a clean miss at the next —
    /// append/seal invalidates without any explicit eviction.
    pub epoch: u64,
    /// Number of top tuples ranked.
    pub k: usize,
    /// Raw bits of the Theorem-2 tail mass bound pτ.
    pub p_tau_bits: u64,
    /// Number of typical answers selected.
    pub typical_count: usize,
    /// Line-coalescing budget (0 = exact).
    pub max_lines: usize,
    /// Distribution algorithm.
    pub algorithm: Algorithm,
    /// Line-coalescing combine rule.
    pub coalesce: CoalescePolicy,
    /// Whether the U-Top-k baseline answer was requested.
    pub u_topk: bool,
    /// Possible-world enumeration budget (exhaustive baseline only).
    pub world_limit: u128,
}

impl CacheKey {
    /// The key for `query` against the resident dataset `dataset_id` at
    /// watermark `epoch` (0 for static datasets).
    pub fn new(dataset_id: u64, epoch: u64, query: &TopkQuery) -> Self {
        CacheKey {
            dataset: dataset_id,
            epoch,
            k: query.k,
            p_tau_bits: query.p_tau.to_bits(),
            typical_count: query.typical_count,
            max_lines: query.max_lines,
            algorithm: query.algorithm,
            coalesce: query.coalesce_policy,
            u_topk: query.compute_u_topk,
            world_limit: query.world_limit,
        }
    }
}

/// One cached answer plus its recency and insertion stamps.
struct CacheEntry {
    answer: Arc<QueryAnswer>,
    last_used: u64,
    inserted: Instant,
}

/// A concurrent, LRU-bounded result cache shared by every serving worker.
///
/// Keys hash to one of up to eight shards, each an independently locked
/// `HashMap`, so concurrent lookups on different keys rarely contend.
/// Recency is a single shared atomic tick — cheap, monotonic, and precise
/// enough for eviction. A capacity of `0` disables caching entirely
/// (lookups always miss, inserts are dropped). An optional per-entry TTL
/// ([`ResultCache::with_ttl`]) additionally expires answers by wall-clock
/// age, for relations that refresh out-of-band (hot reloads, external
/// pipelines) and so never move an epoch.
pub struct ResultCache {
    shards: Vec<Mutex<HashMap<CacheKey, CacheEntry>>>,
    caps: Vec<usize>,
    ttl: Option<Duration>,
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    expirations: AtomicU64,
    generation: AtomicU64,
}

impl ResultCache {
    /// A cache holding at most `capacity` answers across all shards, with
    /// no TTL (entries age out by LRU and epoch-keying only).
    pub fn new(capacity: usize) -> Self {
        let shards = capacity.clamp(1, 8);
        let caps: Vec<usize> = (0..shards)
            .map(|i| capacity / shards + usize::from(i < capacity % shards))
            .collect();
        debug_assert_eq!(caps.iter().sum::<usize>(), capacity);
        ResultCache {
            shards: (0..shards).map(|_| Mutex::new(HashMap::new())).collect(),
            caps,
            ttl: None,
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            expirations: AtomicU64::new(0),
            generation: AtomicU64::new(0),
        }
    }

    /// Bounds every entry's lifetime to `ttl`: a lookup older than that is
    /// removed and counted as an expiration + miss. `None` disables the
    /// bound (the default).
    pub fn with_ttl(mut self, ttl: Option<Duration>) -> Self {
        self.ttl = ttl;
        self
    }

    /// The configured per-entry TTL, when one is set.
    pub fn ttl(&self) -> Option<Duration> {
        self.ttl
    }

    fn shard_of(&self, key: &CacheKey) -> usize {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        (hasher.finish() % self.shards.len() as u64) as usize
    }

    /// Looks up a cached answer, refreshing its recency on a hit. Counts a
    /// hit or miss either way; an entry past the TTL is removed and counted
    /// as an expiration and a miss.
    pub fn get(&self, key: &CacheKey) -> Option<Arc<QueryAnswer>> {
        let shard = self.shard_of(key);
        let mut map = self.shards[shard].lock().expect("cache shard poisoned");
        if let Some(ttl) = self.ttl {
            if map
                .get(key)
                .is_some_and(|entry| entry.inserted.elapsed() > ttl)
            {
                map.remove(key);
                self.expirations.fetch_add(1, Ordering::Relaxed);
                self.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        }
        match map.get_mut(key) {
            Some(entry) => {
                entry.last_used = self.tick.fetch_add(1, Ordering::Relaxed);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(&entry.answer))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts (or refreshes) an answer, evicting the shard's
    /// least-recently-used entry when the shard is full. A no-op when the
    /// cache capacity is zero.
    pub fn insert(&self, key: CacheKey, answer: Arc<QueryAnswer>) {
        let shard = self.shard_of(&key);
        let cap = self.caps[shard];
        if cap == 0 {
            return;
        }
        let mut map = self.shards[shard].lock().expect("cache shard poisoned");
        let last_used = self.tick.fetch_add(1, Ordering::Relaxed);
        if !map.contains_key(&key) && map.len() >= cap {
            if let Some(victim) = map
                .iter()
                .min_by_key(|(_, entry)| entry.last_used)
                .map(|(victim, _)| *victim)
            {
                map.remove(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        map.insert(
            key,
            CacheEntry {
                answer,
                last_used,
                inserted: Instant::now(),
            },
        );
    }

    /// Number of answers currently cached.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|shard| shard.lock().expect("cache shard poisoned").len())
            .sum()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total capacity across shards (0 = caching disabled).
    pub fn capacity(&self) -> usize {
        self.caps.iter().sum()
    }

    /// Lookups answered from the cache so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that fell through to execution so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries evicted to uphold the bound so far.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Entries removed because they outlived the TTL so far.
    pub fn expirations(&self) -> u64 {
        self.expirations.load(Ordering::Relaxed)
    }

    /// The cache generation: how many times an append/seal has invalidated
    /// cached epochs. Purely observational — invalidation itself is
    /// structural (the epoch is part of every [`CacheKey`], so stale
    /// entries simply stop matching and age out by LRU); the generation is
    /// the daemon's cheap "the data moved" signal for log lines and
    /// `explain --after`.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Relaxed)
    }

    /// Advances the generation (called when a live dataset's epoch moves).
    pub fn bump_generation(&self) {
        self.generation.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::typical::TypicalSelection;
    use ttk_uncertain::{ScoreDistribution, UncertainTable};

    fn answer(scan_depth: usize) -> Arc<QueryAnswer> {
        Arc::new(QueryAnswer {
            distribution: ScoreDistribution::from_points(Vec::new()),
            typical: TypicalSelection {
                answers: Vec::new(),
                expected_distance: 0.0,
            },
            u_topk: None,
            scan_depth,
            distribution_time: std::time::Duration::ZERO,
            typical_time: std::time::Duration::ZERO,
        })
    }

    fn key(dataset: u64, k: usize, p_tau: f64) -> CacheKey {
        CacheKey::new(dataset, 0, &TopkQuery::new(k).with_p_tau(p_tau))
    }

    fn tiny_table() -> UncertainTable {
        UncertainTable::builder()
            .tuple(1u64, 10.0, 0.5)
            .expect("valid tuple")
            .build()
            .expect("valid table")
    }

    fn scored_table(score: f64) -> UncertainTable {
        UncertainTable::builder()
            .tuple(1u64, score, 0.5)
            .expect("valid tuple")
            .build()
            .expect("valid table")
    }

    #[test]
    fn registry_rejects_duplicate_names_and_resolves_by_name() {
        let registry = DatasetRegistry::new();
        let first = registry
            .register("sensors", Dataset::table(tiny_table()))
            .expect("first registration");
        let second = registry
            .register("soldiers", Dataset::table(tiny_table()))
            .expect("second registration");
        assert_ne!(first, second);
        assert_eq!(registry.names(), ["sensors", "soldiers"]);
        assert_eq!(registry.len(), 2);

        let err = registry
            .register("sensors", Dataset::table(tiny_table()))
            .expect_err("duplicate must be rejected");
        assert!(err.to_string().contains("already registered"));

        assert_eq!(registry.get("sensors").expect("resolves").id(), first);
        assert!(registry.get("missing").is_none());
    }

    #[test]
    fn reload_swaps_the_handle_while_old_handles_stay_valid() {
        let registry = DatasetRegistry::new();
        registry
            .register_with_loader(
                "sensors",
                Dataset::table(scored_table(1.0)).with_label("sensors"),
                Box::new(|| Ok(Dataset::table(scored_table(2.0)))),
            )
            .expect("registration");

        // An in-flight query's view of the world.
        let before = registry.get("sensors").expect("resolves");

        let fresh = registry.reload("sensors").expect("reload");
        assert_ne!(
            before.id(),
            fresh.id(),
            "reload must mint a new dataset id so cached answers stop matching"
        );
        assert_eq!(fresh.label(), "sensors");
        assert_eq!(registry.get("sensors").expect("resolves").id(), fresh.id());
        // The pre-reload handle still answers for the old data.
        assert_eq!(before.label(), "sensors");

        // A dataset registered without a loader cannot reload.
        registry
            .register("frozen", Dataset::table(tiny_table()))
            .expect("registration");
        let err = registry.reload("frozen").expect_err("no loader");
        assert!(err.to_string().contains("no reload source"), "{err}");

        // Neither can a live dataset or a missing name.
        registry
            .register_live("feed", Arc::new(AppendLog::new(8)))
            .expect("live registration");
        let err = registry.reload("feed").expect_err("live");
        assert!(err.to_string().contains("is live"), "{err}");
        let err = registry.reload("missing").expect_err("missing");
        assert!(err.to_string().contains("no dataset named"), "{err}");
    }

    #[test]
    fn unregister_removes_the_entry_and_names_the_missing_one() {
        let registry = DatasetRegistry::new();
        registry
            .register("sensors", Dataset::table(tiny_table()))
            .expect("registration");
        registry
            .register("soldiers", Dataset::table(tiny_table()))
            .expect("registration");
        registry.unregister("sensors").expect("unregister");
        assert_eq!(registry.names(), ["soldiers"]);
        assert!(registry.get("sensors").is_none());
        let err = registry.unregister("sensors").expect_err("gone");
        assert!(err.to_string().contains("no dataset named `sensors`"));
        // The freed name is available again.
        registry
            .register("sensors", Dataset::table(tiny_table()))
            .expect("re-registration");
    }

    #[test]
    fn admin_register_imports_through_the_installed_importer() {
        let mut registry = DatasetRegistry::new();
        // No importer: admin registration refuses with a clear error.
        let err = registry
            .admin_register("sensors", "/data/sensors.csv")
            .expect_err("no importer");
        assert!(err.to_string().contains("no importer"), "{err}");

        registry.set_importer(Box::new(|path| {
            if path.ends_with(".csv") {
                Ok((
                    Dataset::table(tiny_table()),
                    Box::new(|| Ok(Dataset::table(tiny_table()))) as DatasetLoader,
                ))
            } else {
                Err(Error::InvalidParameter(format!("cannot import {path}")))
            }
        }));
        let id = registry
            .admin_register("sensors", "/data/sensors.csv")
            .expect("import");
        assert_eq!(registry.get("sensors").expect("resolves").id(), id);
        assert_eq!(
            registry.get("sensors").expect("resolves").label(),
            "sensors"
        );
        // Admin-registered datasets carry a loader, so reload works.
        registry.reload("sensors").expect("reload");

        // The duplicate-name check applies to the admin plane too.
        let err = registry
            .admin_register("sensors", "/data/other.csv")
            .expect_err("duplicate");
        assert!(
            err.to_string()
                .contains("dataset `sensors` is already registered"),
            "{err}"
        );
        // Import failures surface and leave the registry unchanged.
        assert!(registry.admin_register("bad", "/data/bad.bin").is_err());
        assert_eq!(registry.len(), 1);
    }

    #[test]
    fn cache_counts_hits_and_misses_and_returns_the_stored_answer() {
        let cache = ResultCache::new(4);
        let k = key(1, 3, 1e-3);
        assert!(cache.get(&k).is_none());
        cache.insert(k, answer(42));
        let got = cache.get(&k).expect("cached");
        assert_eq!(got.scan_depth, 42);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn cache_keys_differ_when_any_query_knob_differs() {
        let base = TopkQuery::new(3);
        let k0 = CacheKey::new(1, 0, &base);
        assert_ne!(k0, CacheKey::new(2, 0, &base));
        assert_ne!(k0, CacheKey::new(1, 1, &base), "epoch must participate");
        assert_ne!(k0, CacheKey::new(1, 0, &TopkQuery::new(4)));
        assert_ne!(k0, CacheKey::new(1, 0, &base.with_p_tau(1e-6)));
        assert_ne!(k0, CacheKey::new(1, 0, &base.with_max_lines(0)));
        assert_ne!(
            k0,
            CacheKey::new(1, 0, &base.with_algorithm(Algorithm::KCombo))
        );
        assert_ne!(k0, CacheKey::new(1, 0, &base.with_u_topk(false)));
    }

    #[test]
    fn live_registration_exposes_the_log_and_static_datasets_do_not() {
        use crate::live::AppendLog;
        use std::sync::Arc as StdArc;
        use ttk_uncertain::{SourceTuple, UncertainTuple};

        let registry = DatasetRegistry::new();
        registry
            .register("frozen", Dataset::table(tiny_table()))
            .expect("static registration");
        let log = StdArc::new(AppendLog::new(8));
        let id = registry
            .register_live("feed", StdArc::clone(&log))
            .expect("live registration");
        assert!(registry.live("frozen").is_none());
        assert!(registry.live("missing").is_none());
        assert!(registry.live("feed").is_some());
        assert_eq!(registry.names(), ["frozen", "feed"]);

        // The registry's dataset view and the shared log see the same data.
        let dataset = registry.get("feed").expect("resolves");
        assert_eq!(dataset.id(), id);
        assert_eq!(dataset.label(), "feed");
        assert_eq!(dataset.epoch(), 0);
        log.append(vec![SourceTuple::independent(
            UncertainTuple::new(1u64, 9.0, 0.5).expect("tuple"),
        )])
        .expect("append");
        log.seal();
        assert_eq!(dataset.epoch(), 1);

        let err = registry
            .register_live("feed", StdArc::new(AppendLog::new(8)))
            .expect_err("duplicate live name");
        assert!(err.to_string().contains("already registered"));
    }

    #[test]
    fn cache_generation_counts_bumps() {
        let cache = ResultCache::new(4);
        assert_eq!(cache.generation(), 0);
        cache.bump_generation();
        cache.bump_generation();
        assert_eq!(cache.generation(), 2);
    }

    #[test]
    fn cache_evicts_least_recently_used_within_the_bound() {
        // Capacity 1 ⇒ a single shard with capacity 1: any second key evicts.
        let cache = ResultCache::new(1);
        let first = key(1, 1, 1e-3);
        let second = key(1, 2, 1e-3);
        cache.insert(first, answer(1));
        cache.insert(second, answer(2));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.evictions(), 1);
        assert!(cache.get(&first).is_none());
        assert_eq!(cache.get(&second).expect("survivor").scan_depth, 2);
    }

    #[test]
    fn cache_recency_refresh_protects_hot_entries() {
        let cache = ResultCache::new(1);
        let hot = key(1, 1, 1e-3);
        cache.insert(hot, answer(1));
        // Touch the hot entry, then overwrite it via re-insert: the re-insert
        // of an existing key must not evict (len stays within bound).
        assert!(cache.get(&hot).is_some());
        cache.insert(hot, answer(3));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.evictions(), 0);
        assert_eq!(cache.get(&hot).expect("refreshed").scan_depth, 3);
    }

    #[test]
    fn cache_size_bound_holds_across_many_inserts() {
        let capacity = 16;
        let cache = ResultCache::new(capacity);
        assert_eq!(cache.capacity(), capacity);
        for i in 0..200usize {
            cache.insert(key(1, i + 1, 1e-3), answer(i));
            assert!(cache.len() <= capacity, "bound violated at insert {i}");
        }
        assert_eq!(cache.len(), capacity);
        assert!(cache.evictions() >= (200 - capacity) as u64);
    }

    #[test]
    fn ttl_expires_entries_by_wall_clock_and_counts_expirations() {
        let cache = ResultCache::new(4).with_ttl(Some(Duration::from_millis(25)));
        assert_eq!(cache.ttl(), Some(Duration::from_millis(25)));
        let k = key(1, 3, 1e-3);
        cache.insert(k, answer(7));
        // Young enough: a plain hit.
        assert_eq!(cache.get(&k).expect("fresh").scan_depth, 7);
        assert_eq!(cache.expirations(), 0);

        std::thread::sleep(Duration::from_millis(60));
        assert!(cache.get(&k).is_none(), "stale entry must expire");
        assert_eq!(cache.expirations(), 1);
        assert_eq!(cache.len(), 0);
        // The expiry counted as a miss: 1 hit, 1 miss so far.
        assert_eq!((cache.hits(), cache.misses()), (1, 1));

        // Re-inserting restarts the clock.
        cache.insert(k, answer(8));
        assert_eq!(cache.get(&k).expect("fresh again").scan_depth, 8);

        // Without a TTL nothing ever expires.
        let untimed = ResultCache::new(4);
        assert_eq!(untimed.ttl(), None);
        untimed.insert(k, answer(9));
        std::thread::sleep(Duration::from_millis(40));
        assert!(untimed.get(&k).is_some());
        assert_eq!(untimed.expirations(), 0);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = ResultCache::new(0);
        assert_eq!(cache.capacity(), 0);
        let k = key(1, 3, 1e-3);
        cache.insert(k, answer(1));
        assert!(cache.get(&k).is_none());
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.hits(), 0);
        assert_eq!(cache.misses(), 1);
    }
}
