//! Server-resident datasets and the concurrent result cache behind `ttk serve`.
//!
//! A long-lived query daemon keeps two pieces of shared state:
//!
//! * a [`DatasetRegistry`] — the named, `Arc`-shared [`Dataset`]s resident in
//!   the process. Registering is a startup-time act (the daemon loads its
//!   inputs once, warms them, then serves); lookups afterwards are
//!   read-only, so the registry itself needs no interior locking — workers
//!   share it behind one `Arc<DatasetRegistry>`.
//! * a [`ResultCache`] — a sharded, LRU-bounded map from a query's full
//!   shape ([`CacheKey`]) to its finished [`QueryAnswer`]. Repeated queries
//!   skip execution entirely and ship the cached answer, bit-identical to
//!   the cold run (the cache stores the answer the executor produced, it
//!   never re-derives anything).
//!
//! ## Cache semantics
//!
//! The cache is *lossy by design*: a concurrent miss on the same key may run
//! the query twice (both workers execute, both insert, last write wins).
//! That is safe — execution is deterministic for a fixed dataset and query,
//! so both answers are identical — and it keeps the fast path free of any
//! per-key in-flight bookkeeping. The bound is enforced per shard: the
//! per-shard capacities sum to exactly the configured capacity, and an
//! insert into a full shard evicts that shard's least-recently-used entry.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use ttk_uncertain::{CoalescePolicy, Error, Result};

use crate::live::{AppendLog, LiveDataset};
use crate::query::{Algorithm, QueryAnswer, TopkQuery};
use crate::session::Dataset;

/// One resident dataset: its name, the queryable [`Dataset`], and — for
/// live datasets — the shared [`AppendLog`] the append/subscribe paths
/// operate on.
struct Entry {
    name: String,
    dataset: Arc<Dataset>,
    live: Option<Arc<AppendLog>>,
}

/// The named datasets resident in a serving process.
///
/// Insertion-ordered; names are unique. Built once at daemon startup and
/// then shared read-only across workers (live datasets mutate through
/// their interior [`AppendLog`], not through the registry).
#[derive(Default)]
pub struct DatasetRegistry {
    entries: Vec<Entry>,
}

impl DatasetRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        DatasetRegistry::default()
    }

    /// Registers `dataset` under `name` and returns its process-unique
    /// dataset id (the id cache keys are derived from).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] when a dataset with the same name
    /// is already registered — silently shadowing a resident dataset would
    /// leave stale cache entries answering for the wrong data.
    pub fn register(&mut self, name: impl Into<String>, dataset: Dataset) -> Result<u64> {
        self.push_entry(name.into(), dataset, None)
    }

    /// Registers `log` under `name` as a live dataset (a [`LiveDataset`]
    /// provider labelled `name`) and returns its process-unique dataset id.
    /// The log stays shared: the daemon's append and subscription paths
    /// reach it through [`DatasetRegistry::live`].
    ///
    /// # Errors
    ///
    /// As [`DatasetRegistry::register`].
    pub fn register_live(&mut self, name: impl Into<String>, log: Arc<AppendLog>) -> Result<u64> {
        let name = name.into();
        let dataset =
            Dataset::from_provider(LiveDataset::new(Arc::clone(&log))).with_label(name.clone());
        self.push_entry(name, dataset, Some(log))
    }

    fn push_entry(
        &mut self,
        name: String,
        dataset: Dataset,
        live: Option<Arc<AppendLog>>,
    ) -> Result<u64> {
        if self.entries.iter().any(|entry| entry.name == name) {
            return Err(Error::InvalidParameter(format!(
                "dataset `{name}` is already registered"
            )));
        }
        let id = dataset.id();
        self.entries.push(Entry {
            name,
            dataset: Arc::new(dataset),
            live,
        });
        Ok(id)
    }

    /// Looks up a resident dataset by name.
    pub fn get(&self, name: &str) -> Option<&Arc<Dataset>> {
        self.entries
            .iter()
            .find(|entry| entry.name == name)
            .map(|entry| &entry.dataset)
    }

    /// Looks up the append log behind a resident **live** dataset by name
    /// (`None` when the name is unknown or names a static dataset).
    pub fn live(&self, name: &str) -> Option<&Arc<AppendLog>> {
        self.entries
            .iter()
            .find(|entry| entry.name == name)
            .and_then(|entry| entry.live.as_ref())
    }

    /// The registered names, in registration order.
    pub fn names(&self) -> Vec<&str> {
        self.entries
            .iter()
            .map(|entry| entry.name.as_str())
            .collect()
    }

    /// Number of resident datasets.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// The full query shape a cached answer is keyed on.
///
/// The issue's headline key is (dataset id, algorithm, k, pτ), but any query
/// knob that changes the answer must participate — otherwise a `max_lines`
/// or coalesce-policy change would be answered from stale state. Floats are
/// keyed by their IEEE-754 bits, consistent with the wire codec's
/// bit-identical discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Process-unique id of the resident dataset ([`Dataset::id`]).
    pub dataset: u64,
    /// The dataset epoch the answer was computed at ([`Dataset::epoch`]).
    /// Static datasets stay at 0 forever; live datasets advance per seal,
    /// so an answer cached at one watermark is a clean miss at the next —
    /// append/seal invalidates without any explicit eviction.
    pub epoch: u64,
    /// Number of top tuples ranked.
    pub k: usize,
    /// Raw bits of the Theorem-2 tail mass bound pτ.
    pub p_tau_bits: u64,
    /// Number of typical answers selected.
    pub typical_count: usize,
    /// Line-coalescing budget (0 = exact).
    pub max_lines: usize,
    /// Distribution algorithm.
    pub algorithm: Algorithm,
    /// Line-coalescing combine rule.
    pub coalesce: CoalescePolicy,
    /// Whether the U-Top-k baseline answer was requested.
    pub u_topk: bool,
    /// Possible-world enumeration budget (exhaustive baseline only).
    pub world_limit: u128,
}

impl CacheKey {
    /// The key for `query` against the resident dataset `dataset_id` at
    /// watermark `epoch` (0 for static datasets).
    pub fn new(dataset_id: u64, epoch: u64, query: &TopkQuery) -> Self {
        CacheKey {
            dataset: dataset_id,
            epoch,
            k: query.k,
            p_tau_bits: query.p_tau.to_bits(),
            typical_count: query.typical_count,
            max_lines: query.max_lines,
            algorithm: query.algorithm,
            coalesce: query.coalesce_policy,
            u_topk: query.compute_u_topk,
            world_limit: query.world_limit,
        }
    }
}

/// One cached answer plus its recency stamp.
struct CacheEntry {
    answer: Arc<QueryAnswer>,
    last_used: u64,
}

/// A concurrent, LRU-bounded result cache shared by every serving worker.
///
/// Keys hash to one of up to eight shards, each an independently locked
/// `HashMap`, so concurrent lookups on different keys rarely contend.
/// Recency is a single shared atomic tick — cheap, monotonic, and precise
/// enough for eviction. A capacity of `0` disables caching entirely
/// (lookups always miss, inserts are dropped).
pub struct ResultCache {
    shards: Vec<Mutex<HashMap<CacheKey, CacheEntry>>>,
    caps: Vec<usize>,
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    generation: AtomicU64,
}

impl ResultCache {
    /// A cache holding at most `capacity` answers across all shards.
    pub fn new(capacity: usize) -> Self {
        let shards = capacity.clamp(1, 8);
        let caps: Vec<usize> = (0..shards)
            .map(|i| capacity / shards + usize::from(i < capacity % shards))
            .collect();
        debug_assert_eq!(caps.iter().sum::<usize>(), capacity);
        ResultCache {
            shards: (0..shards).map(|_| Mutex::new(HashMap::new())).collect(),
            caps,
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            generation: AtomicU64::new(0),
        }
    }

    fn shard_of(&self, key: &CacheKey) -> usize {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        (hasher.finish() % self.shards.len() as u64) as usize
    }

    /// Looks up a cached answer, refreshing its recency on a hit. Counts a
    /// hit or miss either way.
    pub fn get(&self, key: &CacheKey) -> Option<Arc<QueryAnswer>> {
        let shard = self.shard_of(key);
        let mut map = self.shards[shard].lock().expect("cache shard poisoned");
        match map.get_mut(key) {
            Some(entry) => {
                entry.last_used = self.tick.fetch_add(1, Ordering::Relaxed);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(&entry.answer))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts (or refreshes) an answer, evicting the shard's
    /// least-recently-used entry when the shard is full. A no-op when the
    /// cache capacity is zero.
    pub fn insert(&self, key: CacheKey, answer: Arc<QueryAnswer>) {
        let shard = self.shard_of(&key);
        let cap = self.caps[shard];
        if cap == 0 {
            return;
        }
        let mut map = self.shards[shard].lock().expect("cache shard poisoned");
        let last_used = self.tick.fetch_add(1, Ordering::Relaxed);
        if !map.contains_key(&key) && map.len() >= cap {
            if let Some(victim) = map
                .iter()
                .min_by_key(|(_, entry)| entry.last_used)
                .map(|(victim, _)| *victim)
            {
                map.remove(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        map.insert(key, CacheEntry { answer, last_used });
    }

    /// Number of answers currently cached.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|shard| shard.lock().expect("cache shard poisoned").len())
            .sum()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total capacity across shards (0 = caching disabled).
    pub fn capacity(&self) -> usize {
        self.caps.iter().sum()
    }

    /// Lookups answered from the cache so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that fell through to execution so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries evicted to uphold the bound so far.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// The cache generation: how many times an append/seal has invalidated
    /// cached epochs. Purely observational — invalidation itself is
    /// structural (the epoch is part of every [`CacheKey`], so stale
    /// entries simply stop matching and age out by LRU); the generation is
    /// the daemon's cheap "the data moved" signal for log lines and
    /// `explain --after`.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Relaxed)
    }

    /// Advances the generation (called when a live dataset's epoch moves).
    pub fn bump_generation(&self) {
        self.generation.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::typical::TypicalSelection;
    use ttk_uncertain::{ScoreDistribution, UncertainTable};

    fn answer(scan_depth: usize) -> Arc<QueryAnswer> {
        Arc::new(QueryAnswer {
            distribution: ScoreDistribution::from_points(Vec::new()),
            typical: TypicalSelection {
                answers: Vec::new(),
                expected_distance: 0.0,
            },
            u_topk: None,
            scan_depth,
            distribution_time: std::time::Duration::ZERO,
            typical_time: std::time::Duration::ZERO,
        })
    }

    fn key(dataset: u64, k: usize, p_tau: f64) -> CacheKey {
        CacheKey::new(dataset, 0, &TopkQuery::new(k).with_p_tau(p_tau))
    }

    fn tiny_table() -> UncertainTable {
        UncertainTable::builder()
            .tuple(1u64, 10.0, 0.5)
            .expect("valid tuple")
            .build()
            .expect("valid table")
    }

    #[test]
    fn registry_rejects_duplicate_names_and_resolves_by_name() {
        let mut registry = DatasetRegistry::new();
        let first = registry
            .register("sensors", Dataset::table(tiny_table()))
            .expect("first registration");
        let second = registry
            .register("soldiers", Dataset::table(tiny_table()))
            .expect("second registration");
        assert_ne!(first, second);
        assert_eq!(registry.names(), vec!["sensors", "soldiers"]);
        assert_eq!(registry.len(), 2);

        let err = registry
            .register("sensors", Dataset::table(tiny_table()))
            .expect_err("duplicate must be rejected");
        assert!(err.to_string().contains("already registered"));

        assert_eq!(registry.get("sensors").expect("resolves").id(), first);
        assert!(registry.get("missing").is_none());
    }

    #[test]
    fn cache_counts_hits_and_misses_and_returns_the_stored_answer() {
        let cache = ResultCache::new(4);
        let k = key(1, 3, 1e-3);
        assert!(cache.get(&k).is_none());
        cache.insert(k, answer(42));
        let got = cache.get(&k).expect("cached");
        assert_eq!(got.scan_depth, 42);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn cache_keys_differ_when_any_query_knob_differs() {
        let base = TopkQuery::new(3);
        let k0 = CacheKey::new(1, 0, &base);
        assert_ne!(k0, CacheKey::new(2, 0, &base));
        assert_ne!(k0, CacheKey::new(1, 1, &base), "epoch must participate");
        assert_ne!(k0, CacheKey::new(1, 0, &TopkQuery::new(4)));
        assert_ne!(k0, CacheKey::new(1, 0, &base.with_p_tau(1e-6)));
        assert_ne!(k0, CacheKey::new(1, 0, &base.with_max_lines(0)));
        assert_ne!(
            k0,
            CacheKey::new(1, 0, &base.with_algorithm(Algorithm::KCombo))
        );
        assert_ne!(k0, CacheKey::new(1, 0, &base.with_u_topk(false)));
    }

    #[test]
    fn live_registration_exposes_the_log_and_static_datasets_do_not() {
        use crate::live::AppendLog;
        use std::sync::Arc as StdArc;
        use ttk_uncertain::{SourceTuple, UncertainTuple};

        let mut registry = DatasetRegistry::new();
        registry
            .register("frozen", Dataset::table(tiny_table()))
            .expect("static registration");
        let log = StdArc::new(AppendLog::new(8));
        let id = registry
            .register_live("feed", StdArc::clone(&log))
            .expect("live registration");
        assert!(registry.live("frozen").is_none());
        assert!(registry.live("missing").is_none());
        assert!(registry.live("feed").is_some());
        assert_eq!(registry.names(), vec!["frozen", "feed"]);

        // The registry's dataset view and the shared log see the same data.
        let dataset = registry.get("feed").expect("resolves");
        assert_eq!(dataset.id(), id);
        assert_eq!(dataset.label(), "feed");
        assert_eq!(dataset.epoch(), 0);
        log.append(vec![SourceTuple::independent(
            UncertainTuple::new(1u64, 9.0, 0.5).expect("tuple"),
        )])
        .expect("append");
        log.seal();
        assert_eq!(dataset.epoch(), 1);

        let err = registry
            .register_live("feed", StdArc::new(AppendLog::new(8)))
            .expect_err("duplicate live name");
        assert!(err.to_string().contains("already registered"));
    }

    #[test]
    fn cache_generation_counts_bumps() {
        let cache = ResultCache::new(4);
        assert_eq!(cache.generation(), 0);
        cache.bump_generation();
        cache.bump_generation();
        assert_eq!(cache.generation(), 2);
    }

    #[test]
    fn cache_evicts_least_recently_used_within_the_bound() {
        // Capacity 1 ⇒ a single shard with capacity 1: any second key evicts.
        let cache = ResultCache::new(1);
        let first = key(1, 1, 1e-3);
        let second = key(1, 2, 1e-3);
        cache.insert(first, answer(1));
        cache.insert(second, answer(2));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.evictions(), 1);
        assert!(cache.get(&first).is_none());
        assert_eq!(cache.get(&second).expect("survivor").scan_depth, 2);
    }

    #[test]
    fn cache_recency_refresh_protects_hot_entries() {
        let cache = ResultCache::new(1);
        let hot = key(1, 1, 1e-3);
        cache.insert(hot, answer(1));
        // Touch the hot entry, then overwrite it via re-insert: the re-insert
        // of an existing key must not evict (len stays within bound).
        assert!(cache.get(&hot).is_some());
        cache.insert(hot, answer(3));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.evictions(), 0);
        assert_eq!(cache.get(&hot).expect("refreshed").scan_depth, 3);
    }

    #[test]
    fn cache_size_bound_holds_across_many_inserts() {
        let capacity = 16;
        let cache = ResultCache::new(capacity);
        assert_eq!(cache.capacity(), capacity);
        for i in 0..200usize {
            cache.insert(key(1, i + 1, 1e-3), answer(i));
            assert!(cache.len() <= capacity, "bound violated at insert {i}");
        }
        assert_eq!(cache.len(), capacity);
        assert!(cache.evictions() >= (200 - capacity) as u64);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = ResultCache::new(0);
        assert_eq!(cache.capacity(), 0);
        let k = key(1, 3, 1e-3);
        cache.insert(k, answer(1));
        assert!(cache.get(&k).is_none());
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.hits(), 0);
        assert_eq!(cache.misses(), 1);
    }
}
