//! Property-based validation of the sharded scan path: for **any** table and
//! **any** partitioning of its rank-ordered stream into R shards, executing
//! through `MergeSource` must produce a **bit-identical** top-k score
//! distribution to the single-source path — including adversarial inputs
//! where every tuple ties on score and mutual-exclusion groups straddle
//! every shard boundary.
//!
//! Runs through the unified `Dataset`/`Session` API.

use proptest::prelude::*;
use ttk_core::{Dataset, Session, TopkQuery};
use ttk_uncertain::{SourceTuple, TupleSource, UncertainTable, VecSource};

mod support;
use support::table_with;

/// Splits the table's rank-ordered stream into `shards` shard streams using
/// the given assignment policy. All policies preserve per-shard rank order
/// (each shard is a subsequence of the rank-ordered stream) and the global
/// group-key namespace.
fn partition(table: &UncertainTable, shards: usize, policy: u8, salt: u64) -> Vec<VecSource> {
    let mut parts: Vec<Vec<SourceTuple>> = (0..shards).map(|_| Vec::new()).collect();
    let mut source = table.to_source();
    let total = table.len();
    let mut index = 0usize;
    while let Some(t) = source.next_tuple().unwrap() {
        let shard = match policy {
            // Round robin: ME groups and tie groups straddle every boundary.
            0 => index % shards,
            // Contiguous blocks.
            1 => (index * shards) / total.max(1),
            // Deterministic pseudo-random scatter.
            _ => {
                let mut h = (index as u64)
                    .wrapping_add(salt)
                    .wrapping_mul(0x9E3779B97F4A7C15);
                h ^= h >> 29;
                (h % shards as u64) as usize
            }
        };
        parts[shard.min(shards - 1)].push(t);
        index += 1;
    }
    parts.into_iter().map(VecSource::new).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// The acceptance property: any R-shard partition of any table yields a
    /// bit-identical distribution to the single-source path.
    #[test]
    fn sharded_equals_single_source(
        table in table_with(8),
        shards in 1usize..6,
        policy in 0u8..3,
        salt in 0u64..1_000_000,
        k in 1usize..5,
    ) {
        let query = TopkQuery::new(k).with_p_tau(1e-3).with_u_topk(false);
        let mut session = Session::new();
        let single_answer = session.execute(&Dataset::stream(table.to_source()), &query);
        let sharded_answer =
            session.execute(&Dataset::shards(partition(&table, shards, policy, salt)), &query);
        match (single_answer, sharded_answer) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(a.distribution, b.distribution);
                prop_assert_eq!(a.scan_depth, b.scan_depth);
                prop_assert_eq!(a.typical.scores(), b.typical.scores());
            }
            // Degenerate tables (fewer than k compatible tuples) must fail
            // identically on both paths.
            (Err(_), Err(_)) => {}
            (a, b) => prop_assert!(false, "paths disagree: {:?} vs {:?}", a, b),
        }
    }

    /// The adversarial tie case: every tuple has the same score, so the whole
    /// table is one tie group crossing every shard boundary.
    #[test]
    fn all_ties_at_every_boundary(
        table in table_with(1),
        shards in 2usize..6,
        policy in 0u8..3,
        k in 1usize..4,
    ) {
        let query = TopkQuery::new(k).with_p_tau(1e-3).with_u_topk(false);
        let mut session = Session::new();
        let single_answer = session.execute(&Dataset::stream(table.to_source()), &query);
        let sharded_answer =
            session.execute(&Dataset::shards(partition(&table, shards, policy, 7)), &query);
        match (single_answer, sharded_answer) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(a.distribution, b.distribution);
                prop_assert_eq!(a.scan_depth, b.scan_depth);
            }
            (Err(_), Err(_)) => {}
            (a, b) => prop_assert!(false, "paths disagree: {:?} vs {:?}", a, b),
        }
    }

    /// U-Topk keeps full-stream semantics on the sharded path too: the
    /// drain-the-remainder fallback sees the identical merged stream.
    #[test]
    fn u_topk_agrees_across_sharding(
        table in table_with(6),
        shards in 1usize..5,
    ) {
        let query = TopkQuery::new(2).with_p_tau(1e-2);
        let mut session = Session::new();
        let single_answer = session.execute(&Dataset::stream(table.to_source()), &query);
        let sharded_answer =
            session.execute(&Dataset::shards(partition(&table, shards, 0, 0)), &query);
        match (single_answer, sharded_answer) {
            (Ok(a), Ok(b)) => {
                let (ua, ub) = (a.u_topk.map(|u| u.vector), b.u_topk.map(|u| u.vector));
                prop_assert_eq!(ua, ub);
            }
            (Err(_), Err(_)) => {}
            (a, b) => prop_assert!(false, "paths disagree: {:?} vs {:?}", a, b),
        }
    }
}
