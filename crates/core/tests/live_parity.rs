//! Live-dataset acceptance properties:
//!
//! 1. **Snapshot parity** — for *any* table, *any* append order and *any*
//!    segmentation into sealed segments, scanning the live snapshot is
//!    bit-identical to scanning the table directly: the same rank-ordered
//!    row sequence, and the same executed answer. (Sealed segments are
//!    individually rank-sorted and the snapshot opens as a k-way merge; the
//!    rank key is a total order, so merge == global sort.)
//! 2. **Snapshot isolation** — a reader racing a sealing appender never
//!    observes a torn snapshot: every opened snapshot drains to exactly its
//!    advertised row count, in rank order, with a prefix-closed id set.
//! 3. **Exactly-on-shift subscriptions** — over a real socket served by
//!    `serve_client`, a standing query is pushed its baseline answer and
//!    then again only when an epoch advance actually shifted the answer
//!    distribution; unshifted epochs are evaluated and skipped.

use std::net::TcpListener;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;
use ttk_core::{
    AppendLog, Dataset, DatasetRegistry, LiveDataset, QueryServeOptions, RemoteQueryClient,
    ResultCache, ServeOutcome, Session, TopkQuery,
};
use ttk_uncertain::{ScanHandle, SourceTuple, TupleSource, UncertainTuple};

mod support;
use support::table_with;

fn drain(mut handle: ScanHandle) -> Vec<SourceTuple> {
    let mut rows = Vec::new();
    while let Some(row) = handle.next_tuple().unwrap() {
        rows.push(row);
    }
    rows
}

/// Deterministic xorshift shuffle — append order must not matter, so the
/// property feeds the log a salted permutation of the table's stream.
fn shuffled(mut rows: Vec<SourceTuple>, salt: u64) -> Vec<SourceTuple> {
    let mut state = salt | 1;
    for i in (1..rows.len()).rev() {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        rows.swap(i, (state % (i as u64 + 1)) as usize);
    }
    rows
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any append order, any segmentation: the sealed snapshot scans
    /// bit-identically to the table it accumulated, and the executed answer
    /// matches the direct-stream run.
    #[test]
    fn live_snapshot_scan_and_answer_match_the_one_shot_table(
        table in table_with(6),
        salt in 0u64..1_000_000,
        batch in 1usize..9,
        seal_every_batches in 1usize..4,
        k in 1usize..4,
    ) {
        let reference = drain(Dataset::stream(table.to_source()).open().unwrap());
        let log = Arc::new(AppendLog::new(usize::MAX >> 1));
        for (index, chunk) in shuffled(reference.clone(), salt).chunks(batch).enumerate() {
            log.append(chunk.to_vec()).unwrap();
            if (index + 1) % seal_every_batches == 0 {
                log.seal();
            }
        }
        log.seal();
        prop_assert_eq!(log.staged_rows(), 0);

        let snapshot = log.snapshot();
        prop_assert_eq!(snapshot.rows(), reference.len());
        let scanned = drain(snapshot.open());
        prop_assert_eq!(&scanned, &reference);

        // Executed-answer parity through the full Dataset/Session seam.
        let query = TopkQuery::new(k).with_p_tau(1e-3).with_u_topk(false);
        let mut session = Session::new();
        let direct = session.execute(&Dataset::stream(table.to_source()), &query);
        let live = session.execute(
            &Dataset::from_provider(LiveDataset::new(Arc::clone(&log))),
            &query,
        );
        match (direct, live) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(a.distribution, b.distribution);
                prop_assert_eq!(a.scan_depth, b.scan_depth);
                prop_assert_eq!(a.typical.scores(), b.typical.scores());
            }
            // Degenerate tables (fewer than k compatible tuples) must fail
            // identically on both paths.
            (Err(_), Err(_)) => {}
            (a, b) => prop_assert!(false, "paths disagree: {:?} vs {:?}", a, b),
        }
    }

    /// Any append order, any segmentation, any compaction schedule — an
    /// auto-fold bound, on-demand folds fired mid-stream by a bitmask, or
    /// both at once: the folded snapshot still scans bit-identically to the
    /// one-shot table and still executes to the same answer, while the
    /// final fold genuinely collapses the log to a single sealed segment.
    #[test]
    fn compaction_preserves_scan_and_answer_parity(
        table in table_with(6),
        salt in 0u64..1_000_000,
        batch in 1usize..9,
        seal_every_batches in 1usize..4,
        auto_bound in 0usize..6,
        compact_mask in 0u16..1024,
        k in 1usize..4,
    ) {
        // A bound of one sealed segment is rejected by the builder; fold
        // the degenerate draw into "auto-compaction disabled".
        let auto_bound = if auto_bound == 1 { 0 } else { auto_bound };
        let reference = drain(Dataset::stream(table.to_source()).open().unwrap());
        let log = Arc::new(AppendLog::new(usize::MAX >> 1).with_compact_at(auto_bound));
        let mut seals = 0usize;
        for (index, chunk) in shuffled(reference.clone(), salt).chunks(batch).enumerate() {
            log.append(chunk.to_vec()).unwrap();
            if (index + 1) % seal_every_batches == 0 {
                log.seal();
                // The on-demand half of the trigger schedule: the mask
                // decides after which seals a fold fires, so folds land on
                // fresh segments, folded segments, and empty logs alike.
                if compact_mask & (1 << (seals % 10)) != 0 {
                    let outcome = log.compact();
                    prop_assert!(outcome.segments_after <= 1);
                }
                seals += 1;
            }
        }
        log.seal();
        prop_assert_eq!(log.staged_rows(), 0);

        // The final fold: everything sealed collapses into one segment at a
        // fresh epoch (unless the schedule already left at most one).
        let outcome = log.compact();
        if outcome.compacted_now {
            prop_assert_eq!(outcome.segments_after, 1);
            prop_assert_eq!(outcome.rows, reference.len());
        }
        let snapshot = log.snapshot();
        prop_assert!(snapshot.segment_count() <= 1);
        prop_assert_eq!(snapshot.rows(), reference.len());
        if outcome.compacted_now {
            prop_assert_eq!(snapshot.compacted_epoch(), snapshot.epoch());
            prop_assert_eq!(snapshot.epoch(), outcome.epoch);
        }
        let scanned = drain(snapshot.open());
        prop_assert_eq!(&scanned, &reference);

        // Executed-answer parity through the full Dataset/Session seam.
        let query = TopkQuery::new(k).with_p_tau(1e-3).with_u_topk(false);
        let mut session = Session::new();
        let direct = session.execute(&Dataset::stream(table.to_source()), &query);
        let compacted = session.execute(
            &Dataset::from_provider(LiveDataset::new(Arc::clone(&log))),
            &query,
        );
        match (direct, compacted) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(a.distribution, b.distribution);
                prop_assert_eq!(a.scan_depth, b.scan_depth);
                prop_assert_eq!(a.typical.scores(), b.typical.scores());
            }
            (Err(_), Err(_)) => {}
            (a, b) => prop_assert!(false, "paths disagree: {:?} vs {:?}", a, b),
        }
    }
}

/// A reader racing a sealing appender never sees a torn snapshot: each
/// observed snapshot has exactly its advertised rows, in rank order, and
/// its id set is a prefix of the append sequence.
#[test]
fn concurrent_appends_never_tear_a_snapshot() {
    const CHUNK: usize = 50;
    const CHUNKS: usize = 40;
    let log = Arc::new(AppendLog::new(usize::MAX >> 1));

    let appender = {
        let log = Arc::clone(&log);
        std::thread::spawn(move || {
            for chunk in 0..CHUNKS {
                let base = (chunk * CHUNK) as u64;
                let rows: Vec<SourceTuple> = (0..CHUNK as u64)
                    .map(|i| {
                        // Scores deliberately interleave across chunks so
                        // sealed segments overlap in rank order.
                        let id = base + i;
                        let score = ((id * 7919) % 1000) as f64;
                        SourceTuple::independent(UncertainTuple::new(id, score, 0.5).unwrap())
                    })
                    .collect();
                log.append(rows).unwrap();
                log.seal();
            }
        })
    };

    let total = (CHUNK * CHUNKS) as u64;
    loop {
        let snapshot = log.snapshot();
        let rows = drain(snapshot.open());
        assert_eq!(
            rows.len(),
            snapshot.rows(),
            "snapshot advertised a different row count than it scanned"
        );
        // Rank order holds across segment boundaries.
        for pair in rows.windows(2) {
            assert!(
                pair[0].tuple.rank_key() <= pair[1].tuple.rank_key(),
                "snapshot scan out of rank order"
            );
        }
        // Sealed-only visibility: every chunk is all-or-nothing, so the id
        // set is exactly the first `rows.len()` appended ids.
        assert_eq!(
            rows.len() % CHUNK,
            0,
            "a partially-applied chunk is visible"
        );
        let mut ids: Vec<u64> = rows.iter().map(|r| r.tuple.id().raw()).collect();
        ids.sort_unstable();
        for (position, id) in ids.iter().enumerate() {
            assert_eq!(*id, position as u64, "id set is not append-prefix-closed");
        }
        if rows.len() as u64 == total {
            break;
        }
    }
    appender.join().unwrap();
    assert_eq!(log.epoch(), CHUNKS as u64);
}

/// The standing-subscription contract over a real socket: the baseline
/// answer is pushed once, an epoch that does not shift the distribution
/// pushes nothing, and the next shifting epoch is pushed (reporting its own
/// epoch — the unshifted one was evaluated and skipped, not queued).
#[test]
fn subscription_pushes_exactly_on_answer_shift() {
    let log = Arc::new(AppendLog::new(1000));
    log.append(vec![SourceTuple::independent(
        UncertainTuple::new(1u64, 100.0, 1.0).unwrap(),
    )])
    .unwrap();
    log.seal();

    let registry = DatasetRegistry::new();
    registry.register_live("feed", Arc::clone(&log)).unwrap();
    let registry = Arc::new(registry);
    let cache = Arc::new(ResultCache::new(8));

    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let server = {
        let registry = Arc::clone(&registry);
        let cache = Arc::clone(&cache);
        std::thread::spawn(move || {
            static STOP: AtomicBool = AtomicBool::new(false);
            let (stream, _) = listener.accept().unwrap();
            let mut session = Session::new();
            let options = QueryServeOptions {
                subscription_poll: Duration::from_millis(10),
                ..QueryServeOptions::default()
            };
            ttk_core::serve_client(stream, &registry, &cache, &mut session, &options, &STOP)
        })
    };

    let query = TopkQuery::new(1).with_p_tau(1e-6).with_u_topk(false);
    let mut watch = RemoteQueryClient::new(addr)
        .watch("feed", &query, 2)
        .unwrap();

    let baseline = watch.next_push().unwrap().expect("baseline push");
    assert_eq!(baseline.epoch, 1);
    assert_eq!(baseline.answer.distribution.len(), 1);

    // Epoch 2: a certain loser — the top-1 distribution cannot change.
    log.append(vec![SourceTuple::independent(
        UncertainTuple::new(2u64, 50.0, 0.5).unwrap(),
    )])
    .unwrap();
    log.seal();
    // Give the subscription loop ample polls to evaluate (and skip) it.
    std::thread::sleep(Duration::from_millis(200));

    // Epoch 3: a maybe-winner above the incumbent — the distribution shifts.
    log.append(vec![SourceTuple::independent(
        UncertainTuple::new(3u64, 200.0, 0.5).unwrap(),
    )])
    .unwrap();
    log.seal();

    let shifted = watch.next_push().unwrap().expect("shift push");
    assert_eq!(shifted.epoch, 3, "the unshifted epoch 2 must be skipped");
    assert_ne!(shifted.answer_hash, baseline.answer_hash);
    assert_eq!(shifted.answer.distribution.len(), 2);

    // max_pushes = 2: the server closes the push stream cleanly.
    assert!(watch.next_push().unwrap().is_none());

    let outcome = server.join().unwrap().unwrap();
    match outcome {
        ServeOutcome::Subscription(summary) => {
            assert_eq!(summary.pushes, 2, "exactly the baseline and the shift");
            assert!(
                summary.evaluations >= 3,
                "every sealed epoch is evaluated (got {})",
                summary.evaluations
            );
            assert_eq!(summary.last_epoch, 3);
        }
        other => panic!("expected a subscription outcome, got {other}"),
    }
}
