//! Property-based cross-validation of every algorithm against exhaustive
//! possible-world enumeration on random small tables (with score ties and
//! mutual-exclusion groups).

use proptest::prelude::*;
use ttk_core::baselines::{exhaustive_u_topk, u_topk, UTopkConfig};
use ttk_core::dp::{
    materialized_topk_score_distribution, topk_score_distribution, MainConfig, MeStrategy,
};
use ttk_core::state_expansion::NaiveConfig;
use ttk_core::typical::{typical_topk, typical_topk_brute_force};
use ttk_core::{k_combo, state_expansion};
use ttk_uncertain::{
    exact_topk_score_distribution, ScoreDistribution, UncertainTable, UncertainTuple,
};

/// Random small table with ties (small integer score range) and greedy ME
/// grouping.
fn small_table() -> impl Strategy<Value = UncertainTable> {
    let tuple = (0u64..1000, 0i32..8, 1u32..=10)
        .prop_map(|(id, score, p)| (id, score as f64, p as f64 / 10.0));
    (proptest::collection::vec(tuple, 1..9), any::<bool>()).prop_map(|(mut raw, group_dense)| {
        raw.sort_by_key(|r| r.0);
        raw.dedup_by_key(|r| r.0);
        let tuples: Vec<UncertainTuple> = raw
            .iter()
            .map(|&(id, s, p)| UncertainTuple::new(id, s, p).unwrap())
            .collect();
        let max_group = if group_dense { 4 } else { 2 };
        let mut rules: Vec<Vec<u64>> = Vec::new();
        let mut current: Vec<u64> = Vec::new();
        let mut current_sum = 0.0;
        for t in &tuples {
            if current.len() < max_group && current_sum + t.prob() <= 1.0 {
                current.push(t.id().raw());
                current_sum += t.prob();
            } else {
                if current.len() > 1 {
                    rules.push(current.clone());
                }
                current = vec![t.id().raw()];
                current_sum = t.prob();
            }
        }
        if current.len() > 1 {
            rules.push(current);
        }
        UncertainTable::new(
            tuples,
            rules
                .into_iter()
                .map(|r| r.into_iter().map(Into::into).collect())
                .collect(),
        )
        .unwrap()
    })
}

/// Random larger table (tens to hundreds of tuples) with frequent score ties
/// and greedy ME grouping — big enough that the Theorem-2 gate actually
/// closes before the end of the stream, exercising real truncation.
fn large_table() -> impl Strategy<Value = UncertainTable> {
    let tuple = (0u64..100_000, 0i32..40, 1u32..=10)
        .prop_map(|(id, score, p)| (id, score as f64, p as f64 / 10.0));
    proptest::collection::vec(tuple, 60..220).prop_map(|mut raw| {
        raw.sort_by_key(|r| r.0);
        raw.dedup_by_key(|r| r.0);
        let tuples: Vec<UncertainTuple> = raw
            .iter()
            .map(|&(id, s, p)| UncertainTuple::new(id, s, p).unwrap())
            .collect();
        let mut rules: Vec<Vec<u64>> = Vec::new();
        let mut current: Vec<u64> = Vec::new();
        let mut current_sum = 0.0;
        for t in &tuples {
            if current.len() < 4 && current_sum + t.prob() <= 1.0 {
                current.push(t.id().raw());
                current_sum += t.prob();
            } else {
                if current.len() > 1 {
                    rules.push(current.clone());
                }
                current = vec![t.id().raw()];
                current_sum = t.prob();
            }
        }
        if current.len() > 1 {
            rules.push(current);
        }
        UncertainTable::new(
            tuples,
            rules
                .into_iter()
                .map(|r| r.into_iter().map(Into::into).collect())
                .collect(),
        )
        .unwrap()
    })
}

fn assert_close(a: &ScoreDistribution, b: &ScoreDistribution, label: &str) {
    assert_eq!(
        a.len(),
        b.len(),
        "{label}: line count {} vs {}",
        a.len(),
        b.len()
    );
    for (pa, pb) in a.points().iter().zip(b.points()) {
        assert!(
            (pa.score - pb.score).abs() < 1e-9,
            "{label}: score {} vs {}",
            pa.score,
            pb.score
        );
        assert!(
            (pa.probability - pb.probability).abs() < 1e-9,
            "{label}: probability at score {}: {} vs {}",
            pa.score,
            pa.probability,
            pb.probability
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The main DP (both ME strategies), StateExpansion and k-Combo all
    /// reproduce the exhaustive score distribution exactly when pruning and
    /// coalescing are disabled.
    #[test]
    fn all_algorithms_match_exhaustive(table in small_table(), k in 1usize..5) {
        let exact = exact_topk_score_distribution(&table, k, 1 << 24).unwrap();

        for strategy in [MeStrategy::LeadRegions, MeStrategy::PerEnding] {
            let config = MainConfig {
                p_tau: 1e-12,
                max_lines: 0,
                me_strategy: strategy,
                ..MainConfig::default()
            };
            let got = topk_score_distribution(&table, k, &config).unwrap();
            assert_close(&got.distribution, &exact, &format!("main/{strategy:?} k={k}"));
        }

        let naive = NaiveConfig { p_tau: 1e-12, max_lines: 0, ..NaiveConfig::default() };
        let se = state_expansion(&table, k, &naive).unwrap();
        assert_close(&se.distribution, &exact, &format!("state-expansion k={k}"));
        let kc = k_combo(&table, k, &naive).unwrap();
        assert_close(&kc.distribution, &exact, &format!("k-combo k={k}"));
    }

    /// The best-first U-Topk search finds a vector whose probability equals
    /// the maximum probability over all vectors found by enumeration.
    ///
    /// (Under score ties the two approaches may pick different but equally
    /// probable vectors; under the prefix semantics the search probability
    /// never exceeds the enumeration optimum.)
    #[test]
    fn u_topk_probability_is_maximal(table in small_table(), k in 1usize..4) {
        let exact = exhaustive_u_topk(&table, k, 1 << 24).unwrap();
        let got = u_topk(&table, k, &UTopkConfig::default()).unwrap();
        match (exact, got) {
            (None, None) => {}
            (Some((_, best)), Some(answer)) => {
                prop_assert!(answer.vector.probability() <= best + 1e-9);
                // Without ties the probabilities must match exactly.
                let has_ties = table.tie_groups().iter().any(|g| g.len() > 1);
                if !has_ties {
                    prop_assert!(
                        (answer.vector.probability() - best).abs() < 1e-9,
                        "{} vs {}",
                        answer.vector.probability(),
                        best
                    );
                }
            }
            (exact, got) => {
                return Err(TestCaseError::fail(format!(
                    "existence mismatch: exhaustive={:?} search={:?}",
                    exact.is_some(),
                    got.is_some()
                )));
            }
        }
    }

    /// The typical-selection DP achieves the same optimal objective as brute
    /// force, and its reported objective is consistent with the scores it
    /// returns.
    #[test]
    fn typical_selection_is_optimal(table in small_table(), k in 1usize..4, c in 1usize..5) {
        let dist = exact_topk_score_distribution(&table, k, 1 << 24).unwrap();
        if dist.is_empty() {
            return Ok(());
        }
        let fast = typical_topk(&dist, c).unwrap();
        let slow = typical_topk_brute_force(&dist, c).unwrap();
        prop_assert!((fast.expected_distance - slow.expected_distance).abs() < 1e-9,
            "c={c}: {} vs {}", fast.expected_distance, slow.expected_distance);
        let recomputed = dist.expected_min_distance(&fast.scores());
        prop_assert!((recomputed - fast.expected_distance).abs() < 1e-9);
    }

    /// Coalesced and pruned runs never report more than the allowed number of
    /// lines, never exceed unit mass, and keep the expected score within the
    /// exact distribution's span.
    #[test]
    fn approximation_stays_sane(table in small_table(), k in 1usize..4, max_lines in 1usize..12) {
        let exact = exact_topk_score_distribution(&table, k, 1 << 24).unwrap();
        if exact.is_empty() {
            return Ok(());
        }
        let config = MainConfig {
            p_tau: 1e-3,
            max_lines,
            ..MainConfig::default()
        };
        let got = topk_score_distribution(&table, k, &config).unwrap().distribution;
        prop_assert!(got.len() <= max_lines);
        prop_assert!(got.total_probability() <= 1.0 + 1e-9);
        if !got.is_empty() {
            let lo = exact.min_score().unwrap();
            let hi = exact.max_score().unwrap();
            prop_assert!(got.expected_score() >= lo - 1e-9 && got.expected_score() <= hi + 1e-9);
        }
    }

    /// The streaming `ScanGate` path produces **bit-identical**
    /// `ScoreDistribution`s to the old materialize-then-truncate path, on
    /// small tables (never truncated) and on large ones (genuinely truncated
    /// mid-stream), across ME groups, score ties, both decomposition
    /// strategies, and with coalescing both off and on.
    #[test]
    fn streaming_path_is_bit_identical_to_materialized(
        small in small_table(),
        large in large_table(),
        k in 1usize..5,
    ) {
        for table in [&small, &large] {
            for strategy in [MeStrategy::LeadRegions, MeStrategy::PerEnding] {
                for (p_tau, max_lines) in [(1e-3, 0usize), (0.05, 8)] {
                    let config = MainConfig {
                        p_tau,
                        max_lines,
                        me_strategy: strategy,
                        ..MainConfig::default()
                    };
                    let streamed = topk_score_distribution(table, k, &config).unwrap();
                    let materialized =
                        materialized_topk_score_distribution(table, k, &config).unwrap();
                    // `PartialEq` on distributions compares every score,
                    // probability and witness with exact f64 equality.
                    prop_assert_eq!(&streamed.distribution, &materialized.distribution);
                    prop_assert_eq!(streamed.scan_depth, materialized.scan_depth);
                    prop_assert_eq!(streamed.segments, materialized.segments);
                }
            }
        }
    }

    /// The scan depth never cuts off more than pτ worth of top-k vector mass:
    /// running the DP with the Theorem-2 truncation captures at least the
    /// exhaustive mass minus a generous multiple of pτ.
    #[test]
    fn scan_depth_preserves_mass(table in small_table(), k in 1usize..4) {
        let exact = exact_topk_score_distribution(&table, k, 1 << 24).unwrap();
        let config = MainConfig { p_tau: 1e-3, max_lines: 0, ..MainConfig::default() };
        let got = topk_score_distribution(&table, k, &config).unwrap().distribution;
        // Tiny tables are never truncated, so the masses must agree almost
        // exactly; the tolerance accounts for the per-vector pτ pruning
        // guarantee only.
        prop_assert!(got.total_probability() >= exact.total_probability() - 1e-2);
    }
}
