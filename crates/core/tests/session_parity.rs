//! Parity of the unified `Dataset`/`Session` API with the legacy per-shape
//! entry points it replaces: for **any** random table, executing through
//! `Session::execute` over each `Dataset` kind must be **bit-identical** to
//! the corresponding deprecated entry point, and `Session::execute_batch`
//! must match the legacy batch executors and sequential execution under
//! every ordering and delivery mode.
#![allow(deprecated)] // the whole point of this suite is to compare against them

use proptest::prelude::*;
use ttk_core::{
    cost_descending_order, estimated_cost, execute, execute_batch, execute_batch_sources, BatchJob,
    BatchOptions, BatchOrdering, Dataset, Executor, QueryAnswer, QueryJob, Session, SourceBatchJob,
    TopkQuery,
};
use ttk_uncertain::{
    partition_round_robin, Result, TupleSource, UncertainTable, UncertainTuple, VecSource,
};

mod support;

/// The shared adversarial table generator (score ties, greedy ME grouping).
fn random_table() -> impl Strategy<Value = UncertainTable> {
    support::table_with(8)
}

/// Asserts two execution results are bit-identical (or fail together).
fn assert_identical(
    a: Result<QueryAnswer>,
    b: Result<QueryAnswer>,
) -> std::result::Result<(), TestCaseError> {
    match (a, b) {
        (Ok(a), Ok(b)) => {
            prop_assert_eq!(a.distribution, b.distribution);
            prop_assert_eq!(a.scan_depth, b.scan_depth);
            prop_assert_eq!(a.typical.scores(), b.typical.scores());
            let (ua, ub) = (a.u_topk.map(|u| u.vector), b.u_topk.map(|u| u.vector));
            prop_assert_eq!(ua, ub);
        }
        (Err(_), Err(_)) => {}
        (a, b) => prop_assert!(false, "paths disagree: {:?} vs {:?}", a, b),
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// `Dataset::table` ≡ the legacy free `execute` (full-table U-Topk path).
    #[test]
    fn table_dataset_matches_legacy_execute(
        table in random_table(),
        k in 1usize..5,
        u_topk in any::<bool>(),
    ) {
        let query = TopkQuery::new(k).with_p_tau(1e-3).with_u_topk(u_topk);
        let legacy = execute(&table, &query);
        let dataset = Dataset::table(table);
        let session = Session::new().execute(&dataset, &query);
        assert_identical(legacy, session)?;
    }

    /// `Dataset::stream` ≡ the legacy `Executor::execute_source`.
    #[test]
    fn stream_dataset_matches_legacy_execute_source(
        table in random_table(),
        k in 1usize..5,
        u_topk in any::<bool>(),
    ) {
        let query = TopkQuery::new(k).with_p_tau(1e-3).with_u_topk(u_topk);
        let mut source = table.to_source();
        let legacy = Executor::new().execute_source(&mut source, &query);
        let dataset = Dataset::stream(table.to_source());
        let session = Session::new().execute(&dataset, &query);
        assert_identical(legacy, session)?;
    }

    /// `Dataset::shards` ≡ the legacy `Executor::execute_shards` for any
    /// round-robin partition.
    #[test]
    fn shards_dataset_matches_legacy_execute_shards(
        table in random_table(),
        shards in 1usize..5,
        k in 1usize..5,
    ) {
        let query = TopkQuery::new(k).with_p_tau(1e-3).with_u_topk(false);
        let legacy = Executor::new()
            .execute_shards(partition_round_robin(table.to_source(), shards).unwrap(), &query);
        let dataset =
            Dataset::shards(partition_round_robin(table.to_source(), shards).unwrap());
        let session = Session::new().execute(&dataset, &query);
        assert_identical(legacy, session)?;
    }

    /// `Dataset::generator` ≡ the legacy source path, and replays identically.
    #[test]
    fn generator_dataset_matches_legacy_and_replays(
        table in random_table(),
        k in 1usize..4,
    ) {
        let query = TopkQuery::new(k).with_p_tau(1e-3).with_u_topk(false);
        let mut source = table.to_source();
        let legacy = Executor::new().execute_source(&mut source, &query);
        let template: VecSource = table.to_source();
        let dataset = Dataset::generator(move || Ok(template.clone()));
        let mut session = Session::new();
        let first = session.execute(&dataset, &query);
        let second = session.execute(&dataset, &query);
        assert_identical(legacy, first)?;
        match (session.execute(&dataset, &query), second) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a.distribution, b.distribution),
            (Err(_), Err(_)) => {}
            (a, b) => prop_assert!(false, "replays disagree: {:?} vs {:?}", a, b),
        }
    }

    /// `Session::execute_batch` ≡ the legacy `execute_batch` over a shared
    /// table, for both orderings and any thread count.
    #[test]
    fn session_batch_matches_legacy_batch(
        table in random_table(),
        threads in 0usize..4,
        ordering_cost in any::<bool>(),
    ) {
        let ks: Vec<usize> = (1..=6).collect();
        let legacy_jobs: Vec<BatchJob> = ks
            .iter()
            .map(|&k| BatchJob::new(&table, TopkQuery::new(k).with_u_topk(false)))
            .collect();
        let legacy = execute_batch(&legacy_jobs, threads);

        let dataset = Dataset::table(table.clone());
        let jobs: Vec<QueryJob> = ks
            .iter()
            .map(|&k| QueryJob::new(&dataset, TopkQuery::new(k).with_u_topk(false)))
            .collect();
        let ordering = if ordering_cost {
            BatchOrdering::CostDescending
        } else {
            BatchOrdering::Submission
        };
        let session = Session::new().execute_batch(
            &jobs,
            &BatchOptions::new().with_threads(threads).with_ordering(ordering),
        );
        prop_assert_eq!(legacy.len(), session.len());
        for (a, b) in legacy.into_iter().zip(session) {
            assert_identical(a, b)?;
        }
    }

    /// `Session::execute_batch` over per-job shard datasets ≡ the legacy
    /// `execute_batch_sources` (each job owning its shard streams).
    #[test]
    fn session_batch_matches_legacy_batch_sources(
        table in random_table(),
        shards in 1usize..4,
        threads in 0usize..4,
    ) {
        let ks: Vec<usize> = (1..=5).collect();
        let boxed_shards = |table: &UncertainTable| -> Vec<Box<dyn TupleSource + Send>> {
            partition_round_robin(table.to_source(), shards)
                .unwrap()
                .into_iter()
                .map(|s| Box::new(s) as Box<dyn TupleSource + Send>)
                .collect()
        };
        let legacy_jobs: Vec<SourceBatchJob> = ks
            .iter()
            .map(|&k| {
                SourceBatchJob::new(boxed_shards(&table), TopkQuery::new(k).with_u_topk(false))
            })
            .collect();
        let legacy = execute_batch_sources(legacy_jobs, threads);

        let datasets: Vec<Dataset> = ks
            .iter()
            .map(|_| Dataset::shards(partition_round_robin(table.to_source(), shards).unwrap()))
            .collect();
        let jobs: Vec<QueryJob> = datasets
            .iter()
            .zip(&ks)
            .map(|(dataset, &k)| QueryJob::new(dataset, TopkQuery::new(k).with_u_topk(false)))
            .collect();
        let session =
            Session::new().execute_batch(&jobs, &BatchOptions::new().with_threads(threads));
        prop_assert_eq!(legacy.len(), session.len());
        for (a, b) in legacy.into_iter().zip(session) {
            assert_identical(a, b)?;
        }
    }
}

/// The pathological big-last schedule: under cost ordering the expensive job
/// runs first instead of serializing the tail of the batch.
#[test]
fn big_last_job_is_scheduled_first() {
    let small = TopkQuery::new(1).with_p_tau(0.5).with_u_topk(false);
    // Huge k, tiny pτ, and a full U-Topk drain: by far the biggest job.
    let big = TopkQuery::new(40).with_p_tau(1e-9);
    let queries = [small, small, small, big];
    let costs: Vec<f64> = queries
        .iter()
        .map(|q| estimated_cost(q, Some(10_000)))
        .collect();
    let order = cost_descending_order(&costs);
    assert_eq!(
        order[0], 3,
        "the big job submitted last must run first: {costs:?}"
    );
    // Equal-cost jobs keep submission order behind it.
    assert_eq!(&order[1..], &[0, 1, 2]);
}

/// Bounded result-memory mode: a >100-job batch delivered through the
/// callback sink with at most 4 resident results matches sequential
/// execution exactly.
#[test]
fn bounded_memory_batch_matches_sequential_for_many_jobs() {
    let table = UncertainTable::new(
        (0..60)
            .map(|i| {
                UncertainTuple::new(i as u64, (60 - i) as f64, 0.5 + 0.4 * ((i % 2) as f64))
                    .unwrap()
            })
            .collect(),
        Vec::new(),
    )
    .unwrap();
    let dataset = Dataset::table(table.clone());
    let jobs: Vec<QueryJob> = (0..120)
        .map(|i| QueryJob::new(&dataset, TopkQuery::new(1 + i % 7).with_u_topk(false)))
        .collect();

    let mut delivered: Vec<Option<QueryAnswer>> = (0..jobs.len()).map(|_| None).collect();
    let mut deliveries = 0usize;
    Session::new().execute_batch_with(
        &jobs,
        &BatchOptions::new().with_threads(4).max_resident_results(4),
        |index, answer| {
            assert!(delivered[index].is_none(), "job {index} delivered twice");
            delivered[index] = Some(answer.expect("jobs are valid"));
            deliveries += 1;
        },
    );
    assert_eq!(deliveries, jobs.len());

    let mut executor = Executor::new();
    for (i, job) in jobs.iter().enumerate() {
        let sequential = executor.execute(&table, &job.query).unwrap();
        let batched = delivered[i].as_ref().expect("every job delivered");
        assert_eq!(sequential.distribution, batched.distribution, "job {i}");
        assert_eq!(sequential.scan_depth, batched.scan_depth, "job {i}");
    }
}
