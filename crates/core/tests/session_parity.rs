//! Cross-kind parity of the unified `Dataset`/`Session` API: for **any**
//! random table, executing through `Session::execute` must be
//! **bit-identical** across every `Dataset` kind wrapping the same relation
//! (in-memory table, owned stream, shard set, generator closure), and
//! `Session::execute_batch` must match sequential execution under every
//! ordering and delivery mode.

use proptest::prelude::*;
use ttk_core::{
    cost_descending_order, estimated_cost, BatchOptions, BatchOrdering, Dataset, Executor,
    QueryAnswer, QueryJob, Session, TopkQuery,
};
use ttk_uncertain::{partition_round_robin, Result, UncertainTable, UncertainTuple, VecSource};

mod support;

/// The shared adversarial table generator (score ties, greedy ME grouping).
fn random_table() -> impl Strategy<Value = UncertainTable> {
    support::table_with(8)
}

/// Asserts two execution results are bit-identical (or fail together).
fn assert_identical(
    a: Result<QueryAnswer>,
    b: Result<QueryAnswer>,
) -> std::result::Result<(), TestCaseError> {
    match (a, b) {
        (Ok(a), Ok(b)) => {
            prop_assert_eq!(a.distribution, b.distribution);
            prop_assert_eq!(a.scan_depth, b.scan_depth);
            prop_assert_eq!(a.typical.scores(), b.typical.scores());
            let (ua, ub) = (a.u_topk.map(|u| u.vector), b.u_topk.map(|u| u.vector));
            prop_assert_eq!(ua, ub);
        }
        (Err(_), Err(_)) => {}
        (a, b) => prop_assert!(false, "paths disagree: {:?} vs {:?}", a, b),
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// `Dataset::stream` ≡ `Dataset::table` (full-table U-Topk path
    /// included: the stream path drains the remainder for it).
    #[test]
    fn stream_dataset_matches_table_dataset(
        table in random_table(),
        k in 1usize..5,
        u_topk in any::<bool>(),
    ) {
        let query = TopkQuery::new(k).with_p_tau(1e-3).with_u_topk(u_topk);
        let mut session = Session::new();
        let stream = session.execute(&Dataset::stream(table.to_source()), &query);
        let via_table = session.execute(&Dataset::table(table), &query);
        assert_identical(via_table, stream)?;
    }

    /// `Dataset::shards` ≡ `Dataset::stream` for any round-robin partition.
    #[test]
    fn shards_dataset_matches_stream_dataset(
        table in random_table(),
        shards in 1usize..5,
        k in 1usize..5,
    ) {
        let query = TopkQuery::new(k).with_p_tau(1e-3).with_u_topk(false);
        let mut session = Session::new();
        let single = session.execute(&Dataset::stream(table.to_source()), &query);
        let dataset =
            Dataset::shards(partition_round_robin(table.to_source(), shards).unwrap());
        let sharded = session.execute(&dataset, &query);
        assert_identical(single, sharded)?;
    }

    /// `Dataset::generator` ≡ the stream path, and replays identically.
    #[test]
    fn generator_dataset_matches_stream_and_replays(
        table in random_table(),
        k in 1usize..4,
    ) {
        let query = TopkQuery::new(k).with_p_tau(1e-3).with_u_topk(false);
        let mut session = Session::new();
        let single = session.execute(&Dataset::stream(table.to_source()), &query);
        let template: VecSource = table.to_source();
        let dataset = Dataset::generator(move || Ok(template.clone()));
        let first = session.execute(&dataset, &query);
        let second = session.execute(&dataset, &query);
        assert_identical(single, first)?;
        match (session.execute(&dataset, &query), second) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a.distribution, b.distribution),
            (Err(_), Err(_)) => {}
            (a, b) => prop_assert!(false, "replays disagree: {:?} vs {:?}", a, b),
        }
    }

    /// `Session::execute_batch` ≡ per-job `Session::execute` over a shared
    /// table, for both orderings and any thread count.
    #[test]
    fn session_batch_matches_per_job_execution(
        table in random_table(),
        threads in 0usize..4,
        ordering_cost in any::<bool>(),
    ) {
        let ks: Vec<usize> = (1..=6).collect();
        let dataset = Dataset::table(table);
        let jobs: Vec<QueryJob> = ks
            .iter()
            .map(|&k| QueryJob::new(&dataset, TopkQuery::new(k).with_u_topk(false)))
            .collect();
        let mut session = Session::new();
        let sequential: Vec<Result<QueryAnswer>> = jobs
            .iter()
            .map(|job| session.execute(job.dataset, &job.query))
            .collect();

        let ordering = if ordering_cost {
            BatchOrdering::CostDescending
        } else {
            BatchOrdering::Submission
        };
        let batch = session.execute_batch(
            &jobs,
            &BatchOptions::new().with_threads(threads).with_ordering(ordering),
        );
        prop_assert_eq!(sequential.len(), batch.len());
        for (a, b) in sequential.into_iter().zip(batch) {
            assert_identical(a, b)?;
        }
    }

    /// Per-job shard datasets under the batch executor ≡ the shared-table
    /// batch (each job owning its single-pass shard streams).
    #[test]
    fn per_job_shard_batch_matches_table_batch(
        table in random_table(),
        shards in 1usize..4,
        threads in 0usize..4,
    ) {
        let ks: Vec<usize> = (1..=5).collect();
        let mut session = Session::new();
        let shared = Dataset::table(table.clone());
        let table_jobs: Vec<QueryJob> = ks
            .iter()
            .map(|&k| QueryJob::new(&shared, TopkQuery::new(k).with_u_topk(false)))
            .collect();
        let expected =
            session.execute_batch(&table_jobs, &BatchOptions::new().with_threads(1));

        let datasets: Vec<Dataset> = ks
            .iter()
            .map(|_| Dataset::shards(partition_round_robin(table.to_source(), shards).unwrap()))
            .collect();
        let jobs: Vec<QueryJob> = datasets
            .iter()
            .zip(&ks)
            .map(|(dataset, &k)| QueryJob::new(dataset, TopkQuery::new(k).with_u_topk(false)))
            .collect();
        let sharded =
            session.execute_batch(&jobs, &BatchOptions::new().with_threads(threads));
        prop_assert_eq!(expected.len(), sharded.len());
        for (a, b) in expected.into_iter().zip(sharded) {
            assert_identical(a, b)?;
        }
    }
}

/// The pathological big-last schedule: under cost ordering the expensive job
/// runs first instead of serializing the tail of the batch.
#[test]
fn big_last_job_is_scheduled_first() {
    let small = TopkQuery::new(1).with_p_tau(0.5).with_u_topk(false);
    // Huge k, tiny pτ, and a full U-Topk drain: by far the biggest job.
    let big = TopkQuery::new(40).with_p_tau(1e-9);
    let queries = [small, small, small, big];
    let costs: Vec<f64> = queries
        .iter()
        .map(|q| estimated_cost(q, Some(10_000)))
        .collect();
    let order = cost_descending_order(&costs);
    assert_eq!(
        order[0], 3,
        "the big job submitted last must run first: {costs:?}"
    );
    // Equal-cost jobs keep submission order behind it.
    assert_eq!(&order[1..], &[0, 1, 2]);
}

/// Bounded result-memory mode: a >100-job batch delivered through the
/// callback sink with at most 4 resident results matches sequential
/// execution exactly.
#[test]
fn bounded_memory_batch_matches_sequential_for_many_jobs() {
    let table = UncertainTable::new(
        (0..60)
            .map(|i| {
                UncertainTuple::new(i as u64, (60 - i) as f64, 0.5 + 0.4 * ((i % 2) as f64))
                    .unwrap()
            })
            .collect(),
        Vec::new(),
    )
    .unwrap();
    let dataset = Dataset::table(table.clone());
    let jobs: Vec<QueryJob> = (0..120)
        .map(|i| QueryJob::new(&dataset, TopkQuery::new(1 + i % 7).with_u_topk(false)))
        .collect();

    let mut delivered: Vec<Option<QueryAnswer>> = (0..jobs.len()).map(|_| None).collect();
    let mut deliveries = 0usize;
    Session::new().execute_batch_with(
        &jobs,
        &BatchOptions::new().with_threads(4).max_resident_results(4),
        |index, answer| {
            assert!(delivered[index].is_none(), "job {index} delivered twice");
            delivered[index] = Some(answer.expect("jobs are valid"));
            deliveries += 1;
        },
    );
    assert_eq!(deliveries, jobs.len());

    let mut executor = Executor::new();
    for (i, job) in jobs.iter().enumerate() {
        let sequential = executor.execute(&table, &job.query).unwrap();
        let batched = delivered[i].as_ref().expect("every job delivered");
        assert_eq!(sequential.distribution, batched.distribution, "job {i}");
        assert_eq!(sequential.scan_depth, batched.scan_depth, "job {i}");
    }
}

/// The cost-model drift hook: after an execution, `explain` reports the
/// observed scan depth and the observed/estimated ratio.
#[test]
fn explain_reports_observed_depth_after_execution() {
    let table = UncertainTable::new(
        (0..200)
            .map(|i| UncertainTuple::new(i as u64, (200 - i) as f64, 0.9).unwrap())
            .collect(),
        Vec::new(),
    )
    .unwrap();
    let dataset = Dataset::table(table).with_label("calibration-demo");
    let query = TopkQuery::new(3).with_p_tau(1e-3).with_u_topk(false);
    let mut session = Session::new();

    // Before execution there is an estimate but no observation.
    let before = session.explain(&dataset, &query);
    assert!(before.estimated_depth.is_some());
    assert_eq!(before.observed_depth, None);
    assert_eq!(before.observed_vs_estimated(), None);

    let answer = session.execute(&dataset, &query).unwrap();
    let after = session.explain(&dataset, &query);
    assert_eq!(after.observed_depth, Some(answer.scan_depth));
    let drift = after.observed_vs_estimated().expect("both sides known");
    assert!(drift > 0.0);
    assert!(
        (drift - answer.scan_depth as f64 / after.estimated_depth.unwrap() as f64).abs() < 1e-12
    );
    let text = after.to_string();
    assert!(text.contains("observed scan depth"), "{text}");

    // A different (k, pτ) has its own observation slot.
    let other = TopkQuery::new(4).with_p_tau(1e-3).with_u_topk(false);
    assert_eq!(session.explain(&dataset, &other).observed_depth, None);

    // A *different* dataset — even with an identical label — never reads
    // this dataset's observations (keys are per dataset identity).
    let twin = Dataset::table(
        UncertainTable::new(
            (0..10)
                .map(|i| UncertainTuple::new(i as u64, (10 - i) as f64, 0.9).unwrap())
                .collect(),
            Vec::new(),
        )
        .unwrap(),
    )
    .with_label("calibration-demo");
    assert_eq!(session.explain(&twin, &query).observed_depth, None);

    // Batches record observations too.
    let jobs = [QueryJob::new(&dataset, other)];
    session.execute_batch(&jobs, &BatchOptions::new());
    assert!(session.explain(&dataset, &other).observed_depth.is_some());
}
