//! Bustle-style stress test for the concurrent result cache behind
//! `ttk serve`: N worker threads hammer one shared [`ResultCache`] with a
//! mixed read/write load — a hot set of repeated (k, pτ) queries (mostly
//! cache reads) interleaved with per-thread fresh queries (writes and
//! evictions) — while the capacity stays deliberately smaller than the key
//! space. Every answer any thread ever observes must be bit-identical to a
//! fresh `Session::execute`, and the size bound must hold at the end.

use std::collections::HashMap;
use std::sync::Arc;
use std::thread;

use ttk_core::{CacheKey, Dataset, DatasetRegistry, ResultCache, Session, TopkQuery};
use ttk_uncertain::UncertainTable;

/// Deterministic synthetic relation: rank-ordered scores with dithered
/// gaps, membership probabilities in (0, 0.45], and an ME pair every ten
/// tuples (pair probability sum ≤ 0.9, so the x-relation model holds).
fn synthetic_table(tuples: u64) -> UncertainTable {
    let mut state = 0x9E37_79B9_7F4A_7C15_u64;
    let mut next = move || {
        state = state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        state
    };
    let mut builder = UncertainTable::builder();
    for id in 0..tuples {
        let r = next();
        let score = 1_000.0 - id as f64 * 0.5 + ((r >> 32) % 100) as f64 / 1_000.0;
        let prob = (((r % 9) + 1) as f64) / 20.0;
        builder = builder.tuple(id, score, prob).expect("valid tuple");
    }
    for pair in (0..tuples.saturating_sub(1)).step_by(10) {
        builder = builder.me_rule([pair, pair + 1]);
    }
    builder.build().expect("valid table")
}

/// The serving daemon's per-request logic, minus the socket: consult the
/// cache, execute on a miss, publish the answer.
fn serve_one(
    cache: &ResultCache,
    dataset: &Dataset,
    session: &mut Session,
    query: &TopkQuery,
) -> Arc<ttk_core::QueryAnswer> {
    let key = CacheKey::new(dataset.id(), dataset.epoch(), query);
    if let Some(answer) = cache.get(&key) {
        return answer;
    }
    let answer = Arc::new(session.execute(dataset, query).expect("query executes"));
    cache.insert(key, Arc::clone(&answer));
    answer
}

#[test]
fn mixed_read_write_stress_returns_bit_identical_answers_within_the_bound() {
    const THREADS: usize = 4;
    const OPS_PER_THREAD: usize = 24;
    const CAPACITY: usize = 6;

    let table = synthetic_table(300);
    let registry = DatasetRegistry::new();
    registry
        .register("stress", Dataset::table(table.clone()))
        .expect("registers");
    let registry = Arc::new(registry);
    let cache = Arc::new(ResultCache::new(CAPACITY));

    // The workload: a hot set every thread repeats (reads after the first
    // round) plus per-thread fresh queries (writes that force evictions —
    // the key space is larger than the capacity).
    let hot: Vec<TopkQuery> = (1..=3)
        .map(|k| TopkQuery::new(k).with_p_tau(1e-3).with_u_topk(false))
        .collect();
    let fresh_for = |worker: usize, op: usize| {
        TopkQuery::new(1 + (worker + op) % 5)
            .with_p_tau(10f64.powi(-2 - ((worker * OPS_PER_THREAD + op) % 4) as i32))
            .with_typical_count(1 + op % 3)
            .with_u_topk(false)
    };

    // Ground truth, computed cold on a dedicated session before any
    // concurrency starts.
    let reference_dataset = Dataset::table(table);
    let mut reference_session = Session::new();
    let mut expected: HashMap<CacheKey, ttk_core::QueryAnswer> = HashMap::new();
    let mut record = |query: &TopkQuery| {
        // Key on the *served* dataset's id — that is what the workers use.
        let key = CacheKey::new(registry.get("stress").expect("resident").id(), 0, query);
        expected.entry(key).or_insert_with(|| {
            reference_session
                .execute(&reference_dataset, query)
                .expect("reference run")
        });
    };
    for query in &hot {
        record(query);
    }
    for worker in 0..THREADS {
        for op in 0..OPS_PER_THREAD {
            record(&fresh_for(worker, op));
        }
    }

    let workers: Vec<_> = (0..THREADS)
        .map(|worker| {
            let registry = Arc::clone(&registry);
            let cache = Arc::clone(&cache);
            let hot = hot.clone();
            thread::spawn(move || {
                let dataset = registry.get("stress").expect("resident");
                let mut session = Session::new();
                let mut observed = Vec::new();
                for op in 0..OPS_PER_THREAD {
                    // Two reads of the hot set for every fresh write.
                    let query = if op % 3 < 2 {
                        hot[op % hot.len()]
                    } else {
                        fresh_for(worker, op)
                    };
                    let answer = serve_one(&cache, &dataset, &mut session, &query);
                    observed.push((CacheKey::new(dataset.id(), dataset.epoch(), &query), answer));
                }
                observed
            })
        })
        .collect();

    let mut checked = 0usize;
    for worker in workers {
        for (key, answer) in worker.join().expect("worker thread") {
            let reference = expected.get(&key).expect("every key has a reference run");
            assert_eq!(
                answer.distribution, reference.distribution,
                "distribution must be bit-identical to a fresh execute"
            );
            assert_eq!(answer.typical, reference.typical);
            assert_eq!(answer.scan_depth, reference.scan_depth);
            checked += 1;
        }
    }
    assert_eq!(checked, THREADS * OPS_PER_THREAD);

    // The bound held and the workload actually exercised both paths.
    assert!(
        cache.len() <= CAPACITY,
        "cache holds {} answers, bound is {CAPACITY}",
        cache.len()
    );
    assert!(cache.hits() > 0, "the hot set must produce cache hits");
    assert!(
        cache.evictions() > 0,
        "fresh queries must overflow the bound and evict"
    );
    assert_eq!(
        cache.hits() + cache.misses(),
        (THREADS * OPS_PER_THREAD) as u64
    );
}
