//! Acceptance tests for the streaming rank-scan executor:
//!
//! * every `Algorithm` variant runs through `TupleSource` + `ScanGate`, and
//!   none of the Theorem-2-bounded algorithms reads past the bound (asserted
//!   with a counting source);
//! * a batch of ≥ 100 independent queries executed in parallel produces
//!   results identical to sequential execution.
//!
//! Everything runs through the unified `Dataset`/`Session` API — the
//! per-shape entry points of earlier releases are gone.

use ttk_core::{
    scan_depth, Algorithm, BatchOptions, Dataset, Executor, QueryJob, Session, TopkQuery,
};
use ttk_datagen::cartel::{generate_area, CartelConfig};
use ttk_datagen::synthetic::{generate, MePolicy, SyntheticConfig};
use ttk_uncertain::{
    partition_round_robin, CountingSource, TableSource, UncertainTable, VecSource,
};

/// A large workload whose top tuples carry high confidence (ρ = +0.8), so
/// even the combination-enumerating baselines keep answers above pτ.
fn confident_synthetic_table() -> UncertainTable {
    generate(&SyntheticConfig {
        tuples: 2_000,
        correlation: 0.8,
        me_policy: MePolicy::default(),
        seed: 4242,
        ..SyntheticConfig::default()
    })
    .expect("synthetic generation succeeds")
}

#[test]
fn bounded_algorithms_over_read_at_most_the_last_block_ask() {
    let table = confident_synthetic_table();
    let k = 4;
    let p_tau = 1e-3;
    let depth = scan_depth(&table, k, p_tau).unwrap();
    assert!(
        depth + 1 < table.len(),
        "workload must stop early (depth {depth} of {})",
        table.len()
    );

    let mut session = Session::new();
    for algorithm in [
        Algorithm::Main,
        Algorithm::MainPerEnding,
        Algorithm::StateExpansion,
        Algorithm::KCombo,
    ] {
        let source = CountingSource::new(table.to_source());
        let counter = source.counter();
        let dataset = Dataset::stream(source);
        let query = TopkQuery::new(k)
            .with_p_tau(p_tau)
            .with_algorithm(algorithm)
            .with_u_topk(false);
        let answer = session
            .execute(&dataset, &query)
            .unwrap_or_else(|e| panic!("{algorithm:?}: {e}"));
        assert_eq!(answer.scan_depth, depth, "{algorithm:?}");
        // The gate still admits exactly `depth` tuples and closes on the
        // `depth + 1`-st, but the scan pulls columnar blocks, so the source
        // may be read past the stopping tuple by at most the remainder of
        // the block the gate closed inside (< MAX_BLOCK_TUPLES).
        assert!(
            counter.get() > depth,
            "{algorithm:?} must read past the bound to close the gate"
        );
        assert!(
            counter.get() <= depth + ttk_core::MAX_BLOCK_TUPLES,
            "{algorithm:?} read {} tuples for depth {depth}: more than one \
             block past the bound",
            counter.get()
        );
        assert!(
            answer.distribution.total_probability() > 0.5,
            "{algorithm:?}"
        );
    }
}

#[test]
fn source_path_u_topk_keeps_full_table_semantics() {
    // U-Topk has no probability threshold, so the source path drains the
    // remainder of the stream for it instead of searching only the pτ prefix.
    let table = confident_synthetic_table();
    let query = TopkQuery::new(3).with_p_tau(1e-3); // U-Topk on by default.

    let source = CountingSource::new(table.to_source());
    let counter = source.counter();
    let mut session = Session::new();
    let streamed = session.execute(&Dataset::stream(source), &query).unwrap();
    let materialized = Executor::new().execute(&table, &query).unwrap();

    let (a, b) = (
        streamed.u_topk.as_ref().unwrap(),
        materialized.u_topk.as_ref().unwrap(),
    );
    assert_eq!(a.vector.ids(), b.vector.ids());
    assert_eq!(a.vector.probability(), b.vector.probability());
    assert_eq!(streamed.distribution, materialized.distribution);
    // Draining for U-Topk reads the whole stream — the bound only holds when
    // the comparison answer is disabled.
    assert_eq!(counter.get(), table.len());
}

#[test]
fn exhaustive_variant_runs_through_the_source_too() {
    // Exhaustive enumeration needs the whole (tiny) stream; the open gate
    // drains it and the result matches the table-based path.
    let table = generate(&SyntheticConfig {
        tuples: 12,
        me_policy: MePolicy::default(),
        seed: 99,
        ..SyntheticConfig::default()
    })
    .unwrap();
    let query = TopkQuery::new(3)
        .with_p_tau(1e-12)
        .with_max_lines(0)
        .with_algorithm(Algorithm::Exhaustive)
        .with_u_topk(false);

    let source = CountingSource::new(table.to_source());
    let counter = source.counter();
    let streamed = Session::new()
        .execute(&Dataset::stream(source), &query)
        .unwrap();
    assert_eq!(counter.get(), table.len());

    let materialized = Executor::new().execute(&table, &query).unwrap();
    assert_eq!(streamed.distribution, materialized.distribution);
}

#[test]
fn parallel_batch_matches_sequential_execution() {
    // ≥ 100 independent queries: three tables × a (k, pτ, algorithm) grid.
    // Seeds are chosen for small areas so the suite stays fast on one core.
    let tables: Vec<UncertainTable> = [100u64, 104, 105]
        .iter()
        .map(|&seed| {
            generate_area(&CartelConfig {
                segments: 25,
                seed,
                ..CartelConfig::default()
            })
            .unwrap()
            .into_table()
        })
        .collect();
    let datasets: Vec<Dataset> = tables.iter().map(|t| Dataset::table(t.clone())).collect();
    let mut jobs = Vec::new();
    let mut job_tables = Vec::new(); // table index per job, for spot-checks
    for (table_index, dataset) in datasets.iter().enumerate() {
        let mut push = |query: TopkQuery| {
            jobs.push(QueryJob::new(dataset, query));
            job_tables.push(table_index);
        };
        for k in 1..=10usize {
            for p_tau in [1e-3, 1e-2] {
                push(
                    TopkQuery::new(k)
                        .with_p_tau(p_tau)
                        .with_algorithm(Algorithm::Main)
                        .with_u_topk(k % 2 == 0 && k <= 4),
                );
            }
            if k <= 8 {
                push(
                    TopkQuery::new(k)
                        .with_p_tau(1e-3)
                        .with_algorithm(Algorithm::MainPerEnding)
                        .with_u_topk(false),
                );
            }
            if k <= 4 {
                push(
                    TopkQuery::new(k)
                        .with_p_tau(5e-2)
                        .with_algorithm(Algorithm::StateExpansion)
                        .with_u_topk(false),
                );
            }
            if k <= 2 {
                push(
                    TopkQuery::new(k)
                        .with_p_tau(1e-2)
                        .with_algorithm(Algorithm::KCombo)
                        .with_u_topk(false),
                );
            }
        }
    }
    assert!(jobs.len() >= 100, "{} jobs", jobs.len());

    let mut session = Session::new();
    let parallel = session.execute_batch(&jobs, &BatchOptions::new().with_threads(4));
    let sequential = session.execute_batch(&jobs, &BatchOptions::new().with_threads(1));
    assert_eq!(parallel.len(), jobs.len());

    for (index, (p, s)) in parallel.iter().zip(&sequential).enumerate() {
        match (p, s) {
            // Determinism covers failures too: identical messages.
            (Err(a), Err(b)) => assert_eq!(a.to_string(), b.to_string(), "job {index}"),
            (Ok(p), Ok(s)) => {
                assert_eq!(p.distribution, s.distribution, "job {index}");
                assert_eq!(p.typical.scores(), s.typical.scores(), "job {index}");
                assert_eq!(p.scan_depth, s.scan_depth, "job {index}");
                match (&p.u_topk, &s.u_topk) {
                    (None, None) => {}
                    (Some(a), Some(b)) => {
                        assert_eq!(a.vector.ids(), b.vector.ids(), "job {index}");
                        assert_eq!(
                            a.vector.probability(),
                            b.vector.probability(),
                            "job {index}"
                        );
                    }
                    other => panic!("job {index}: U-Topk presence mismatch {other:?}"),
                }
                // Spot-check against the plain one-executor API.
                if index % 10 == 0 {
                    let direct = Executor::new()
                        .execute(&tables[job_tables[index]], &jobs[index].query)
                        .unwrap();
                    assert_eq!(p.distribution, direct.distribution, "job {index}");
                }
            }
            other => panic!("job {index}: outcome mismatch {other:?}"),
        }
    }
}

#[test]
fn executor_scratch_reuse_does_not_leak_state_between_queries() {
    let big = confident_synthetic_table();
    let small = ttk_datagen::soldier::table().unwrap();
    let mut executor = Executor::new();

    let first = executor
        .execute(&big, &TopkQuery::new(8).with_u_topk(false))
        .unwrap();
    let second = executor
        .execute(
            &small,
            &TopkQuery::new(2).with_p_tau(1e-9).with_max_lines(0),
        )
        .unwrap();
    let third = executor
        .execute(&big, &TopkQuery::new(8).with_u_topk(false))
        .unwrap();

    // Interleaving an unrelated query must not perturb results.
    assert_eq!(first.distribution, third.distribution);
    assert_eq!(second.typical.scores(), vec![118.0, 183.0, 235.0]);

    // A fresh executor agrees with the reused one.
    let fresh = Executor::new()
        .execute(&big, &TopkQuery::new(8).with_u_topk(false))
        .unwrap();
    assert_eq!(first.distribution, fresh.distribution);
}

#[test]
fn sharded_scan_over_read_is_bounded_by_the_block_ask_per_shard() {
    let table = confident_synthetic_table();
    let k = 4;
    let p_tau = 1e-3;
    let shards = 4usize;
    let depth = scan_depth(&table, k, p_tau).unwrap();
    assert!(depth + 1 < table.len(), "workload must stop early");

    let parts = partition_round_robin(TableSource::new(&table), shards).unwrap();
    let counted: Vec<CountingSource<VecSource>> =
        parts.into_iter().map(CountingSource::new).collect();
    let counters: Vec<_> = counted.iter().map(|c| c.counter()).collect();
    let query = TopkQuery::new(k).with_p_tau(p_tau).with_u_topk(false);
    let answer = Session::new()
        .execute(&Dataset::shards(counted), &query)
        .unwrap();
    assert_eq!(answer.scan_depth, depth);

    // The merged scan emits at least depth + 1 tuples (the gate closes on
    // the depth + 1-st) and at most the remainder of the block the gate
    // closed inside on top (< MAX_BLOCK_TUPLES). Round robin deals global
    // rank position p to shard p % shards, so the emitted tuples spread
    // evenly, and each shard may additionally hold one buffered merge head.
    let emitted_bound = depth + ttk_core::MAX_BLOCK_TUPLES;
    for (i, counter) in counters.iter().enumerate() {
        assert!(
            counter.get() <= emitted_bound.div_ceil(shards) + 1,
            "shard {i}: pulled {} for at most {emitted_bound} merged tuples",
            counter.get()
        );
    }
    let pulled_total: usize = counters.iter().map(|c| c.get()).sum();
    assert!(
        pulled_total > depth,
        "the merged scan must read past the bound to close the gate"
    );
    assert!(
        pulled_total <= emitted_bound + shards,
        "total reads {pulled_total} exceed depth {depth} + one block + {shards} heads"
    );
}

#[test]
fn sharded_execution_matches_single_source_end_to_end() {
    let table = confident_synthetic_table();
    let mut session = Session::new();
    for shards in [1usize, 2, 3, 7] {
        let query = TopkQuery::new(5).with_p_tau(1e-3).with_u_topk(false);
        let single = Executor::new().execute(&table, &query).unwrap();
        let parts = partition_round_robin(TableSource::new(&table), shards).unwrap();
        let sharded = session.execute(&Dataset::shards(parts), &query).unwrap();
        assert_eq!(single.distribution, sharded.distribution, "{shards} shards");
        assert_eq!(single.scan_depth, sharded.scan_depth);
        assert_eq!(single.typical.scores(), sharded.typical.scores());
    }
}

#[test]
fn source_batch_matches_table_batch() {
    // Per-job shard datasets (each job owning its single-pass streams) agree
    // with the shared-table batch, in parallel and sequentially.
    let table = confident_synthetic_table();
    let ks: Vec<usize> = (1..=8).collect();
    let shared = Dataset::table(table.clone());
    let table_jobs: Vec<QueryJob> = ks
        .iter()
        .map(|&k| QueryJob::new(&shared, TopkQuery::new(k).with_p_tau(1e-3)))
        .collect();
    let mut session = Session::new();
    let expected = session.execute_batch(&table_jobs, &BatchOptions::new().with_threads(1));

    for threads in [1usize, 3] {
        let datasets: Vec<Dataset> = ks
            .iter()
            .map(|_| Dataset::shards(partition_round_robin(TableSource::new(&table), 3).unwrap()))
            .collect();
        let source_jobs: Vec<QueryJob> = datasets
            .iter()
            .zip(&ks)
            .map(|(dataset, &k)| QueryJob::new(dataset, TopkQuery::new(k).with_p_tau(1e-3)))
            .collect();
        let answers =
            session.execute_batch(&source_jobs, &BatchOptions::new().with_threads(threads));
        assert_eq!(answers.len(), expected.len());
        for ((k, a), e) in ks.iter().zip(&answers).zip(&expected) {
            let (a, e) = (a.as_ref().unwrap(), e.as_ref().unwrap());
            assert_eq!(a.distribution, e.distribution, "k={k} threads={threads}");
            let (ua, ue) = (a.u_topk.as_ref().unwrap(), e.u_topk.as_ref().unwrap());
            assert_eq!(ua.vector.ids(), ue.vector.ids(), "k={k}");
        }
    }
}
