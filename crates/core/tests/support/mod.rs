//! Shared strategies for the integration-test suites (each `tests/*.rs`
//! binary includes this via `mod support;`, so the adversarial generators
//! stay in lockstep across suites).

use proptest::prelude::*;
use ttk_uncertain::{UncertainTable, UncertainTuple};

/// Random table with score ties and greedy ME grouping; `score_span`
/// controls how adversarial the ties are (1 = every tuple ties on score).
pub fn table_with(score_span: i32) -> impl Strategy<Value = UncertainTable> {
    let tuple = (0u64..100_000, 0i32..score_span, 1u32..=10)
        .prop_map(|(id, score, p)| (id, score as f64, p as f64 / 10.0));
    proptest::collection::vec(tuple, 20..120).prop_map(|mut raw| {
        raw.sort_by_key(|r| r.0);
        raw.dedup_by_key(|r| r.0);
        let tuples: Vec<UncertainTuple> = raw
            .iter()
            .map(|&(id, s, p)| UncertainTuple::new(id, s, p).unwrap())
            .collect();
        let mut rules: Vec<Vec<u64>> = Vec::new();
        let mut current: Vec<u64> = Vec::new();
        let mut current_sum = 0.0;
        for t in &tuples {
            if current.len() < 4 && current_sum + t.prob() <= 1.0 {
                current.push(t.id().raw());
                current_sum += t.prob();
            } else {
                if current.len() > 1 {
                    rules.push(current.clone());
                }
                current = vec![t.id().raw()];
                current_sum = t.prob();
            }
        }
        if current.len() > 1 {
            rules.push(current);
        }
        UncertainTable::new(
            tuples,
            rules
                .into_iter()
                .map(|r| r.into_iter().map(Into::into).collect())
                .collect(),
        )
        .unwrap()
    })
}
