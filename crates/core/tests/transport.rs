//! Property-based validation of the transport layer: for **any** table and
//! **any** partitioning, a scan whose shards run behind `TupleFeed`
//! channels, per-shard prefetch threads, or loopback-TCP wire connections
//! must be **bit-identical** — distribution, scan depth, typical answers,
//! U-Topk — to the in-process single-source path, including the adversarial
//! all-ties case where one tie group crosses every shard (and machine)
//! boundary. A producer that errors mid-stream must surface as
//! `Error::Source` on the consumer, never hang or truncate.

use std::net::TcpListener;
use std::sync::mpsc;
use std::time::Duration;

use proptest::prelude::*;
use ttk_core::{
    serve_stream, ConnectOptions, Dataset, QueryAnswer, RemoteShardDataset, ScanPath, ServeOptions,
    ServeSummary, Session, ShardScanGate, TopkQuery,
};
use ttk_uncertain::{
    Error, LeaseRegistry, PrefetchPolicy, Result, ScanHandle, ShardAssignment, SourceTuple,
    TupleFeed, TupleSource, UncertainTable, UncertainTuple, VecSource, WireWriter,
};

mod support;
use support::table_with;

/// Round-robin partition of the table's rank-ordered stream (global group
/// keys preserved), as `Vec<SourceTuple>` shards.
fn partition(table: &UncertainTable, shards: usize) -> Vec<Vec<SourceTuple>> {
    let mut parts: Vec<Vec<SourceTuple>> = (0..shards).map(|_| Vec::new()).collect();
    let mut source = table.to_source();
    let mut index = 0usize;
    while let Some(t) = source.next_tuple().unwrap() {
        parts[index % shards].push(t);
        index += 1;
    }
    parts
}

/// Serves each shard over its own loopback listener (one connection) and
/// returns the addresses.
fn serve_shards(shards: Vec<Vec<SourceTuple>>) -> Vec<String> {
    shards
        .into_iter()
        .map(|shard| {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let addr = listener.local_addr().unwrap().to_string();
            std::thread::spawn(move || {
                let (stream, _) = listener.accept().unwrap();
                // The client may hang up early (gate closed) — expected.
                if let Ok(writer) =
                    WireWriter::new(std::io::BufWriter::new(stream), Some(shard.len()))
                {
                    let _ = writer.serve(&mut VecSource::new(shard));
                }
            });
            addr
        })
        .collect()
}

fn assert_identical(
    a: Result<QueryAnswer>,
    b: Result<QueryAnswer>,
) -> std::result::Result<(), TestCaseError> {
    match (a, b) {
        (Ok(a), Ok(b)) => {
            prop_assert_eq!(a.distribution, b.distribution);
            prop_assert_eq!(a.scan_depth, b.scan_depth);
            prop_assert_eq!(a.typical.scores(), b.typical.scores());
            let (ua, ub) = (a.u_topk.map(|u| u.vector), b.u_topk.map(|u| u.vector));
            prop_assert_eq!(ua, ub);
        }
        (Err(_), Err(_)) => {}
        (a, b) => prop_assert!(false, "paths disagree: {:?} vs {:?}", a, b),
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A feed-wrapped source (producer thread + bounded channel) is
    /// bit-identical to the direct pull, for any channel capacity.
    #[test]
    fn feed_wrapped_scan_matches_direct_scan(
        table in table_with(8),
        buffer in 1usize..48,
        k in 1usize..5,
        u_topk in any::<bool>(),
    ) {
        let query = TopkQuery::new(k).with_p_tau(1e-3).with_u_topk(u_topk);
        let mut session = Session::new();
        let direct = session.execute(&Dataset::stream(table.to_source()), &query);
        let feed = TupleFeed::spawn(table.to_source(), buffer);
        let fed = session.execute(&Dataset::stream(feed), &query);
        assert_identical(direct, fed)?;
    }

    /// A prefetched sharded merge (every shard on its own producer thread)
    /// is bit-identical to the synchronous merge and to the single stream.
    #[test]
    fn prefetched_shards_match_single_source(
        table in table_with(8),
        shards in 1usize..5,
        buffer in 1usize..32,
        k in 1usize..5,
    ) {
        let query = TopkQuery::new(k).with_p_tau(1e-3).with_u_topk(false);
        let mut session = Session::new();
        let single = session.execute(&Dataset::stream(table.to_source()), &query);
        let parts: Vec<VecSource> = partition(&table, shards)
            .into_iter()
            .map(VecSource::new)
            .collect();
        let handle = ScanHandle::merged_prefetched(parts, PrefetchPolicy::per_shard(buffer));
        let prefetched = session.execute(&Dataset::stream(handle), &query);
        assert_identical(single, prefetched)?;
    }

    /// Remote shards over loopback TCP are bit-identical to the in-process
    /// scan — the acceptance property of the wire layer.
    #[test]
    fn remote_loopback_shards_match_single_source(
        table in table_with(8),
        shards in 1usize..4,
        k in 1usize..4,
        prefetch in 0usize..3,
    ) {
        let query = TopkQuery::new(k).with_p_tau(1e-3).with_u_topk(false);
        let mut session = Session::new();
        let single = session.execute(&Dataset::stream(table.to_source()), &query);
        let addrs = serve_shards(partition(&table, shards));
        let mut remote = RemoteShardDataset::new(addrs);
        if prefetch > 0 {
            remote = remote.with_prefetch(PrefetchPolicy::per_shard(prefetch * 8));
        }
        let dataset = remote.into_dataset();
        // The session plans for pushdown; the v1 servers of this test
        // decline it at the handshake, changing nothing about the results.
        prop_assert_eq!(
            session.explain(&dataset, &query).path,
            ScanPath::RemotePushdown { remote: shards, local: 0 }
        );
        let served = session.execute(&dataset, &query);
        assert_identical(single, served)?;
    }

    /// The adversarial all-ties case (one tie group across every shard and
    /// machine boundary) stays bit-identical through every transport.
    #[test]
    fn all_ties_partitions_survive_every_transport(
        table in table_with(1),
        shards in 2usize..5,
        k in 1usize..4,
    ) {
        let query = TopkQuery::new(k).with_p_tau(1e-3).with_u_topk(false);
        let mut session = Session::new();
        let single = session.execute(&Dataset::stream(table.to_source()), &query);

        // Prefetched merge.
        let parts: Vec<VecSource> = partition(&table, shards)
            .into_iter()
            .map(VecSource::new)
            .collect();
        let handle = ScanHandle::merged_prefetched(parts, PrefetchPolicy::per_shard(2));
        let prefetched = session.execute(&Dataset::stream(handle), &query);
        assert_identical(single.clone(), prefetched)?;

        // Remote loopback.
        let addrs = serve_shards(partition(&table, shards));
        let served = session.execute(&RemoteShardDataset::new(addrs).into_dataset(), &query);
        assert_identical(single, served)?;
    }

    /// Mixing remote and local shards of one partition is bit-identical to
    /// the in-process scan.
    #[test]
    fn mixed_remote_and_local_shards_match(
        table in table_with(4),
        shards in 2usize..5,
        k in 1usize..4,
    ) {
        let query = TopkQuery::new(k).with_p_tau(1e-3).with_u_topk(false);
        let mut session = Session::new();
        let single = session.execute(&Dataset::stream(table.to_source()), &query);
        let mut parts = partition(&table, shards);
        let local: Vec<Vec<SourceTuple>> = parts.split_off(shards / 2);
        let local_count = local.len();
        let addrs = serve_shards(parts);
        let dataset = RemoteShardDataset::new(addrs)
            .with_local_shards(local_count, move || {
                Ok(local
                    .iter()
                    .map(|shard| {
                        Box::new(VecSource::new(shard.clone())) as Box<dyn TupleSource + Send>
                    })
                    .collect())
            })
            .into_dataset();
        let mixed = session.execute(&dataset, &query);
        assert_identical(single, mixed)?;
    }
}

/// Serves each shard over its own loopback listener with a **v2 hello**
/// advertising the given assignment, one connection each.
fn serve_shards_with_assignments(shards: Vec<(Vec<SourceTuple>, ShardAssignment)>) -> Vec<String> {
    shards
        .into_iter()
        .map(|(shard, assignment)| {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let addr = listener.local_addr().unwrap().to_string();
            std::thread::spawn(move || {
                let (stream, _) = listener.accept().unwrap();
                if let Ok(writer) = WireWriter::with_assignment(
                    std::io::BufWriter::new(stream),
                    Some(shard.len()),
                    &assignment,
                ) {
                    let _ = writer.serve(&mut VecSource::new(shard));
                }
            });
            addr
        })
        .collect()
}

/// The bare rows of a shard before id assignment: `(score, prob, group)`.
type RawShard = Vec<(f64, f64, Option<u64>)>;

/// Assigns tuple ids `base..` to a raw shard, yielding its wire stream in
/// rank order.
fn materialize_shard(rows: &RawShard, base: u64) -> Vec<SourceTuple> {
    let mut tuples: Vec<SourceTuple> = rows
        .iter()
        .enumerate()
        .map(|(j, &(score, prob, group))| {
            let tuple = UncertainTuple::new(base + j as u64, score, prob).unwrap();
            match group {
                Some(key) => SourceTuple::grouped(tuple, key),
                None => SourceTuple::independent(tuple),
            }
        })
        .collect();
    tuples.sort_by_key(|t| t.tuple.rank_key());
    tuples
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Coordinator-leased id bases — handed out by a [`LeaseRegistry`] in an
    /// arbitrary registration order and advertised in v2 hellos — yield the
    /// same distributions as the operator passing each shard's cumulative
    /// row count by hand. Scores are distinct, so the rank order (and with
    /// it the scan depth and typical answers) is id-independent.
    #[test]
    fn leased_id_bases_match_operator_passed_bases(
        rows in 8usize..60,
        shards in 2usize..5,
        k in 1usize..4,
        rotation in 0usize..5,
    ) {
        let raw: Vec<(f64, f64, Option<u64>)> = (0..rows)
            .map(|i| (
                (rows - i) as f64 + 0.25,
                // Grouped rows stay small enough that no ME group's
                // probabilities can sum past 1.
                0.2 + 0.02 * ((i % 7) as f64),
                (i % 3 == 0).then_some((i / 6) as u64),
            ))
            .collect();
        let parts: Vec<RawShard> = (0..shards)
            .map(|s| raw.iter().skip(s).step_by(shards).copied().collect())
            .collect();

        // Operator arithmetic: shard i starts at the total rows of 0..i.
        let mut operator_bases = Vec::with_capacity(shards);
        let mut base = 0u64;
        for part in &parts {
            operator_bases.push(base);
            base += part.len() as u64;
        }
        // Coordinator: the same shards register in rotated (launch) order.
        let mut registry = LeaseRegistry::new("coord-prop");
        let mut leases: Vec<Option<ShardAssignment>> = vec![None; shards];
        for offset in 0..shards {
            let shard = (rotation + offset) % shards;
            leases[shard] = Some(registry.register(parts[shard].len() as u64));
        }

        let query = TopkQuery::new(k).with_p_tau(1e-3).with_u_topk(false);
        let mut session = Session::new();
        let operator_addrs = serve_shards(
            parts
                .iter()
                .zip(&operator_bases)
                .map(|(part, &base)| materialize_shard(part, base))
                .collect(),
        );
        let operator = session
            .execute(&RemoteShardDataset::new(operator_addrs).into_dataset(), &query)
            .unwrap();
        let leased_addrs = serve_shards_with_assignments(
            parts
                .iter()
                .zip(&leases)
                .map(|(part, lease)| {
                    let lease = lease.clone().expect("every shard leased");
                    (materialize_shard(part, lease.id_base), lease)
                })
                .collect(),
        );
        let leased = session
            .execute(&RemoteShardDataset::new(leased_addrs).into_dataset(), &query)
            .unwrap();
        // The id *assignment* differs when registration order differs, so
        // witness ids may legitimately differ — the distribution's
        // (score, probability) mass, the scan depth and the typical answers
        // must not.
        let mass = |answer: &QueryAnswer| -> Vec<(u64, u64)> {
            answer
                .distribution
                .pairs()
                .map(|(s, p)| (s.to_bits(), p.to_bits()))
                .collect()
        };
        prop_assert_eq!(mass(&leased), mass(&operator));
        prop_assert_eq!(leased.scan_depth, operator.scan_depth);
        prop_assert_eq!(leased.typical.scores(), operator.typical.scores());
    }
}

/// A server that comes up shortly **after** the first dial must be reached
/// via the retry/backoff path — the "restarting server" scenario.
#[test]
fn late_server_is_reached_via_retry() {
    let all = descending_tuples(30);
    let addr = {
        // Reserve an ephemeral port, then release it for the late server.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.local_addr().unwrap().to_string()
    };
    let server_addr = addr.clone();
    let server_shard = all.clone();
    std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(200));
        let listener = TcpListener::bind(&server_addr).unwrap();
        let (stream, _) = listener.accept().unwrap();
        if let Ok(writer) =
            WireWriter::new(std::io::BufWriter::new(stream), Some(server_shard.len()))
        {
            let _ = writer.serve(&mut VecSource::new(server_shard));
        }
    });
    let query = TopkQuery::new(2).with_p_tau(1e-3).with_u_topk(false);
    let mut session = Session::new();
    let local = session
        .execute(&Dataset::stream(VecSource::new(all)), &query)
        .unwrap();
    let dataset = RemoteShardDataset::new([addr])
        .with_connect_options(
            ConnectOptions::default()
                .with_retries(20)
                .with_backoff(Duration::from_millis(25)),
        )
        .into_dataset();
    let remote = session.execute(&dataset, &query).unwrap();
    assert_eq!(remote.distribution, local.distribution);
    assert_eq!(remote.scan_depth, local.scan_depth);
}

/// A server that never comes back fails with a clean `Error::Source` after
/// the retry budget — never a hang, and the message names the attempts.
#[test]
fn dead_server_fails_cleanly_after_retries() {
    let addr = {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.local_addr().unwrap().to_string()
    };
    let dataset = RemoteShardDataset::new([addr])
        .with_connect_options(
            ConnectOptions::default()
                .with_retries(2)
                .with_backoff(Duration::from_millis(5)),
        )
        .into_dataset();
    let started = std::time::Instant::now();
    let err = Session::new()
        .execute(&dataset, &TopkQuery::new(1))
        .unwrap_err();
    assert!(
        matches!(&err, Error::Source(m) if m.contains("after 3 attempts")),
        "{err:?}"
    );
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "retry budget must bound the wait"
    );
}

/// A connection dropped **mid-hello** (accepted, then closed before the
/// hello frame) is retried like a failed dial: the stream has not started,
/// so reconnecting cannot skip tuples.
#[test]
fn mid_hello_disconnects_are_retried() {
    let all = descending_tuples(20);
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let server_shard = all.clone();
    std::thread::spawn(move || {
        // Two flaky accepts (dropped before the hello), then a real serve.
        for _ in 0..2 {
            let (stream, _) = listener.accept().unwrap();
            drop(stream);
        }
        let (stream, _) = listener.accept().unwrap();
        if let Ok(writer) =
            WireWriter::new(std::io::BufWriter::new(stream), Some(server_shard.len()))
        {
            let _ = writer.serve(&mut VecSource::new(server_shard));
        }
    });
    let query = TopkQuery::new(2).with_p_tau(1e-3).with_u_topk(false);
    let mut session = Session::new();
    let local = session
        .execute(&Dataset::stream(VecSource::new(all)), &query)
        .unwrap();
    let dataset = RemoteShardDataset::new([addr])
        .with_connect_options(
            ConnectOptions::default()
                .with_retries(5)
                .with_backoff(Duration::from_millis(10)),
        )
        .into_dataset();
    let remote = session.execute(&dataset, &query).unwrap();
    assert_eq!(remote.distribution, local.distribution);
}

/// Servers advertising conflicting assignments — different group-key
/// namespaces, or overlapping tuple-id ranges — fail the open with a
/// diagnostic instead of silently merging shards that never partitioned one
/// relation.
#[test]
fn conflicting_hello_assignments_are_rejected() {
    let shard_a = descending_tuples(10);
    let shard_b: Vec<SourceTuple> = (10u64..20)
        .map(|i| SourceTuple::independent(UncertainTuple::new(i, (30 - i) as f64, 0.5).unwrap()))
        .collect();
    // Namespace conflict.
    let addrs = serve_shards_with_assignments(vec![
        (
            shard_a.clone(),
            ShardAssignment {
                id_base: 0,
                namespace: "coord-A".into(),
            },
        ),
        (
            shard_b.clone(),
            ShardAssignment {
                id_base: 10,
                namespace: "coord-B".into(),
            },
        ),
    ]);
    let err = Session::new()
        .execute(
            &RemoteShardDataset::new(addrs).into_dataset(),
            &TopkQuery::new(1),
        )
        .unwrap_err();
    assert!(
        matches!(&err, Error::Source(m) if m.contains("namespace")),
        "{err:?}"
    );
    // Overlapping id ranges (both shards claim base 0 over 10 rows).
    let addrs = serve_shards_with_assignments(vec![
        (
            shard_a,
            ShardAssignment {
                id_base: 0,
                namespace: "coord-A".into(),
            },
        ),
        (
            shard_b,
            ShardAssignment {
                id_base: 5,
                namespace: "coord-A".into(),
            },
        ),
    ]);
    let err = Session::new()
        .execute(
            &RemoteShardDataset::new(addrs).into_dataset(),
            &TopkQuery::new(1),
        )
        .unwrap_err();
    assert!(
        matches!(&err, Error::Source(m) if m.contains("overlapping")),
        "{err:?}"
    );
}

/// Serves each shard through [`serve_stream`] — the v3 negotiating server of
/// the `serve-shard` daemon — one connection each, reporting every
/// connection's [`ServeSummary`] through the returned channel. A short
/// pushdown grace keeps the non-announcing (legacy-client) cases fast.
fn serve_shards_v3(
    shards: Vec<Vec<SourceTuple>>,
) -> (Vec<String>, mpsc::Receiver<(usize, ServeSummary)>) {
    let (sender, receiver) = mpsc::channel();
    let addrs = shards
        .into_iter()
        .enumerate()
        .map(|(index, shard)| {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let addr = listener.local_addr().unwrap().to_string();
            let sender = sender.clone();
            std::thread::spawn(move || {
                let (stream, _) = listener.accept().unwrap();
                let options = ServeOptions {
                    pushdown_wait: Duration::from_millis(5),
                    drain_every: 4,
                    ..ServeOptions::default()
                };
                // A vanished client is a summary, not an error; a source
                // error cannot happen with a VecSource.
                let summary =
                    serve_stream(stream, &mut VecSource::new(shard), None, &options).unwrap();
                let _ = sender.send((index, summary));
            });
            addr
        })
        .collect();
    (addrs, receiver)
}

/// The deterministic local-only pushdown bound of one shard: what a
/// [`ShardScanGate`] admits over the shard with **no** remote updates. With
/// updates the server can only stop earlier, so tuples shipped by any v3
/// connection must stay ≤ this.
fn shard_pushdown_bound(shard: &[SourceTuple], k: usize, p_tau: f64) -> u64 {
    let mut gate = ShardScanGate::new(k, p_tau).unwrap();
    let mut admitted = 0u64;
    for t in shard {
        if !gate.admit(t.tuple.score(), t.tuple.prob(), t.group) {
            break;
        }
        admitted += 1;
    }
    admitted
}

/// Runs `query` against pushdown servers over `shards` and checks the
/// tentpole properties: bit-identity with `single`, and — for gated queries
/// — every server's shipped count within its conservative local bound.
fn check_pushdown_case(
    session: &mut Session,
    single: Result<QueryAnswer>,
    shards: Vec<Vec<SourceTuple>>,
    query: &TopkQuery,
) -> std::result::Result<(), TestCaseError> {
    let shard_count = shards.len();
    let bounds: Vec<u64> = shards
        .iter()
        .map(|shard| shard_pushdown_bound(shard, query.k, query.p_tau))
        .collect();
    let rows: Vec<u64> = shards.iter().map(|s| s.len() as u64).collect();
    let (addrs, summaries) = serve_shards_v3(shards);
    let dataset = RemoteShardDataset::new(addrs).into_dataset();
    let pushed = session.execute(&dataset, query);
    let succeeded = pushed.is_ok();
    assert_identical(single, pushed)?;
    if !succeeded {
        return Ok(());
    }
    let drains = query.compute_u_topk;
    let mut shipped_total = 0u64;
    for _ in 0..shard_count {
        let (index, summary) = summaries
            .recv_timeout(Duration::from_secs(10))
            .expect("every server reports a summary");
        prop_assert!(
            summary.pushdown,
            "v3 negotiation must engage: {:?}",
            summary
        );
        shipped_total += summary.shipped;
        prop_assert!(summary.scanned <= rows[index]);
        if !drains {
            // The acceptance bound of the PR: tuples over the wire never
            // exceed the conservative per-shard Theorem-2 bound (remote
            // updates and early client hangups can only lower it).
            prop_assert!(
                summary.shipped <= bounds[index],
                "shard {} shipped {} over its bound {}",
                index,
                summary.shipped,
                bounds[index]
            );
        }
    }
    if drains {
        // Full-stream mode (`k = 0` announced): every row crosses the wire.
        prop_assert_eq!(shipped_total, rows.iter().sum::<u64>());
    }
    // The session records the client-side observed wire traffic for
    // `explain`; the client never decodes more than the servers shipped.
    let plan = session.explain(&dataset, query);
    let observed = plan.observed_wire_tuples.expect("remote scan was observed");
    prop_assert!(
        observed <= shipped_total,
        "{} > {}",
        observed,
        shipped_total
    );
    // The block transport stats count decoded kind-20 frames — the framing
    // truth, independent of how the merge pulled. Blocks are negotiated by
    // default, so every delivered tuple rode a block frame (observed ≤ frame
    // rows), the client never decodes more rows than the servers shipped,
    // and the per-frame accounting is self-consistent.
    let blocks = plan
        .observed_wire_blocks
        .expect("remote scan records block transport stats");
    let block_tuples = plan
        .observed_wire_block_tuples
        .expect("remote scan records block transport stats");
    prop_assert!(observed <= block_tuples);
    prop_assert!(block_tuples <= shipped_total);
    prop_assert!(blocks <= block_tuples || (blocks == 0 && block_tuples == 0));
    prop_assert!(observed == 0 || blocks > 0, "tuples arrived outside blocks");
    if drains {
        prop_assert_eq!(observed, shipped_total);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// **Tentpole property.** For any table, partitioning and k, the
    /// pushdown scan is bit-identical to the single-source scan (including
    /// U-Topk witness ids), and every v3 server ships at most its
    /// conservative local Theorem-2 bound — never the whole shard by
    /// default.
    #[test]
    fn pushdown_scans_are_bit_identical_and_bounded(
        table in table_with(8),
        shards in 1usize..4,
        k in 1usize..4,
        u_topk in any::<bool>(),
    ) {
        let query = TopkQuery::new(k).with_p_tau(1e-3).with_u_topk(u_topk);
        let mut session = Session::new();
        let single = session.execute(&Dataset::stream(table.to_source()), &query);
        check_pushdown_case(&mut session, single, partition(&table, shards), &query)?;
    }

    /// The adversarial all-ties case — one tie group spanning every shard —
    /// through the pushdown path: the per-shard gates must finish their tie
    /// groups before closing, keeping the merge bit-identical.
    #[test]
    fn all_ties_pushdown_stays_bit_identical(
        table in table_with(1),
        shards in 2usize..5,
        k in 1usize..4,
        u_topk in any::<bool>(),
    ) {
        let query = TopkQuery::new(k).with_p_tau(1e-3).with_u_topk(u_topk);
        let mut session = Session::new();
        let single = session.execute(&Dataset::stream(table.to_source()), &query);
        check_pushdown_case(&mut session, single, partition(&table, shards), &query)?;
    }

    /// Back-compat, client side: a legacy (non-announcing) client against v3
    /// servers gets the full replay with bit-identical results — pushdown
    /// silently disabled.
    #[test]
    fn v3_servers_serve_legacy_clients_unchanged(
        table in table_with(6),
        shards in 1usize..4,
        k in 1usize..4,
    ) {
        let query = TopkQuery::new(k).with_p_tau(1e-3).with_u_topk(false);
        let mut session = Session::new();
        let single = session.execute(&Dataset::stream(table.to_source()), &query);
        let (addrs, summaries) = serve_shards_v3(partition(&table, shards));
        let dataset = RemoteShardDataset::new(addrs)
            .with_pushdown(false)
            .into_dataset();
        prop_assert_eq!(
            session.explain(&dataset, &query).path,
            ScanPath::Remote { remote: shards, local: 0 }
        );
        let served = session.execute(&dataset, &query);
        let succeeded = served.is_ok();
        assert_identical(single, served)?;
        if succeeded {
            for _ in 0..shards {
                let (_, summary) = summaries
                    .recv_timeout(Duration::from_secs(10))
                    .expect("every server reports a summary");
                prop_assert!(!summary.pushdown, "grace window must expire: {:?}", summary);
            }
        }
    }

    /// Back-compat, server side: a v3 (announcing) client against pre-v3
    /// servers — both the v1 and the v2-hello flavour — gets the full replay
    /// with bit-identical results.
    #[test]
    fn v3_clients_degrade_against_pre_v3_servers(
        table in table_with(6),
        shards in 1usize..4,
        k in 1usize..4,
        v2_hello in any::<bool>(),
    ) {
        let query = TopkQuery::new(k).with_p_tau(1e-3).with_u_topk(false);
        let mut session = Session::new();
        let single = session.execute(&Dataset::stream(table.to_source()), &query);
        let parts = partition(&table, shards);
        let addrs = if v2_hello {
            let mut registry = LeaseRegistry::new("compat-matrix");
            serve_shards_with_assignments(
                parts
                    .into_iter()
                    .map(|part| {
                        let lease = registry.register(part.len() as u64);
                        // Re-keep the shard's own ids: only the hello labels
                        // change, the rows do not.
                        (part, lease)
                    })
                    .collect(),
            )
        } else {
            serve_shards(parts)
        };
        let served = session.execute(&RemoteShardDataset::new(addrs).into_dataset(), &query);
        assert_identical(single, served)?;
    }
}

/// A source that yields `good` tuples, then fails.
struct FailsAfter {
    tuples: Vec<SourceTuple>,
    served: usize,
}

impl TupleSource for FailsAfter {
    fn next_tuple(&mut self) -> Result<Option<SourceTuple>> {
        if self.served >= self.tuples.len() {
            return Err(Error::Source("shard backend failed mid-stream".into()));
        }
        self.served += 1;
        Ok(Some(self.tuples[self.served - 1]))
    }
}

fn descending_tuples(n: u64) -> Vec<SourceTuple> {
    (0..n)
        .map(|i| SourceTuple::independent(UncertainTuple::new(i, (n - i) as f64, 0.9).unwrap()))
        .collect()
}

/// A producer that errors mid-stream surfaces as `Error::Source` through a
/// feed, never as a hang or a silently short stream.
#[test]
fn feed_producer_error_surfaces_as_source_error() {
    let feed = TupleFeed::spawn(
        FailsAfter {
            tuples: descending_tuples(5),
            served: 0,
        },
        2,
    );
    // A draining query (U-Topk on) must hit the failure.
    let err = Session::new()
        .execute(&Dataset::stream(feed), &TopkQuery::new(2))
        .unwrap_err();
    assert!(
        matches!(&err, Error::Source(m) if m.contains("mid-stream")),
        "{err:?}"
    );
}

/// A server that dies mid-stream (socket closed without the end frame)
/// surfaces as `Error::Source` on the querying side.
#[test]
fn remote_server_dying_mid_stream_is_a_source_error() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    std::thread::spawn(move || {
        let (stream, _) = listener.accept().unwrap();
        let mut writer = WireWriter::new(std::io::BufWriter::new(stream), Some(100)).unwrap();
        for t in descending_tuples(3) {
            writer.write_tuple(&t).unwrap();
        }
        // Drop without the end frame: the connection just dies.
    });
    let err = Session::new()
        .execute(
            &RemoteShardDataset::new([addr]).into_dataset(),
            &TopkQuery::new(2),
        )
        .unwrap_err();
    assert!(matches!(err, Error::Source(_)), "{err:?}");
}

/// A server that forwards its own source failure delivers that failure (as
/// `Error::Source`) to the querying side through the error frame.
#[test]
fn remote_source_failure_is_forwarded_through_the_wire() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    std::thread::spawn(move || {
        let (stream, _) = listener.accept().unwrap();
        let writer = WireWriter::new(std::io::BufWriter::new(stream), None).unwrap();
        let _ = writer.serve(&mut FailsAfter {
            tuples: descending_tuples(4),
            served: 0,
        });
    });
    let err = Session::new()
        .execute(
            &RemoteShardDataset::new([addr]).into_dataset(),
            &TopkQuery::new(2),
        )
        .unwrap_err();
    assert!(
        matches!(&err, Error::Source(m) if m.contains("shard backend failed")),
        "{err:?}"
    );
}
