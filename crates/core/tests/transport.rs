//! Property-based validation of the transport layer: for **any** table and
//! **any** partitioning, a scan whose shards run behind `TupleFeed`
//! channels, per-shard prefetch threads, or loopback-TCP wire connections
//! must be **bit-identical** — distribution, scan depth, typical answers,
//! U-Topk — to the in-process single-source path, including the adversarial
//! all-ties case where one tie group crosses every shard (and machine)
//! boundary. A producer that errors mid-stream must surface as
//! `Error::Source` on the consumer, never hang or truncate.

use std::net::TcpListener;

use proptest::prelude::*;
use ttk_core::{Dataset, QueryAnswer, RemoteShardDataset, ScanPath, Session, TopkQuery};
use ttk_uncertain::{
    Error, PrefetchPolicy, Result, ScanHandle, SourceTuple, TupleFeed, TupleSource, UncertainTable,
    UncertainTuple, VecSource, WireWriter,
};

mod support;
use support::table_with;

/// Round-robin partition of the table's rank-ordered stream (global group
/// keys preserved), as `Vec<SourceTuple>` shards.
fn partition(table: &UncertainTable, shards: usize) -> Vec<Vec<SourceTuple>> {
    let mut parts: Vec<Vec<SourceTuple>> = (0..shards).map(|_| Vec::new()).collect();
    let mut source = table.to_source();
    let mut index = 0usize;
    while let Some(t) = source.next_tuple().unwrap() {
        parts[index % shards].push(t);
        index += 1;
    }
    parts
}

/// Serves each shard over its own loopback listener (one connection) and
/// returns the addresses.
fn serve_shards(shards: Vec<Vec<SourceTuple>>) -> Vec<String> {
    shards
        .into_iter()
        .map(|shard| {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let addr = listener.local_addr().unwrap().to_string();
            std::thread::spawn(move || {
                let (stream, _) = listener.accept().unwrap();
                // The client may hang up early (gate closed) — expected.
                if let Ok(writer) =
                    WireWriter::new(std::io::BufWriter::new(stream), Some(shard.len()))
                {
                    let _ = writer.serve(&mut VecSource::new(shard));
                }
            });
            addr
        })
        .collect()
}

fn assert_identical(
    a: Result<QueryAnswer>,
    b: Result<QueryAnswer>,
) -> std::result::Result<(), TestCaseError> {
    match (a, b) {
        (Ok(a), Ok(b)) => {
            prop_assert_eq!(a.distribution, b.distribution);
            prop_assert_eq!(a.scan_depth, b.scan_depth);
            prop_assert_eq!(a.typical.scores(), b.typical.scores());
            let (ua, ub) = (a.u_topk.map(|u| u.vector), b.u_topk.map(|u| u.vector));
            prop_assert_eq!(ua, ub);
        }
        (Err(_), Err(_)) => {}
        (a, b) => prop_assert!(false, "paths disagree: {:?} vs {:?}", a, b),
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A feed-wrapped source (producer thread + bounded channel) is
    /// bit-identical to the direct pull, for any channel capacity.
    #[test]
    fn feed_wrapped_scan_matches_direct_scan(
        table in table_with(8),
        buffer in 1usize..48,
        k in 1usize..5,
        u_topk in any::<bool>(),
    ) {
        let query = TopkQuery::new(k).with_p_tau(1e-3).with_u_topk(u_topk);
        let mut session = Session::new();
        let direct = session.execute(&Dataset::stream(table.to_source()), &query);
        let feed = TupleFeed::spawn(table.to_source(), buffer);
        let fed = session.execute(&Dataset::stream(feed), &query);
        assert_identical(direct, fed)?;
    }

    /// A prefetched sharded merge (every shard on its own producer thread)
    /// is bit-identical to the synchronous merge and to the single stream.
    #[test]
    fn prefetched_shards_match_single_source(
        table in table_with(8),
        shards in 1usize..5,
        buffer in 1usize..32,
        k in 1usize..5,
    ) {
        let query = TopkQuery::new(k).with_p_tau(1e-3).with_u_topk(false);
        let mut session = Session::new();
        let single = session.execute(&Dataset::stream(table.to_source()), &query);
        let parts: Vec<VecSource> = partition(&table, shards)
            .into_iter()
            .map(VecSource::new)
            .collect();
        let handle = ScanHandle::merged_prefetched(parts, PrefetchPolicy::per_shard(buffer));
        let prefetched = session.execute(&Dataset::stream(handle), &query);
        assert_identical(single, prefetched)?;
    }

    /// Remote shards over loopback TCP are bit-identical to the in-process
    /// scan — the acceptance property of the wire layer.
    #[test]
    fn remote_loopback_shards_match_single_source(
        table in table_with(8),
        shards in 1usize..4,
        k in 1usize..4,
        prefetch in 0usize..3,
    ) {
        let query = TopkQuery::new(k).with_p_tau(1e-3).with_u_topk(false);
        let mut session = Session::new();
        let single = session.execute(&Dataset::stream(table.to_source()), &query);
        let addrs = serve_shards(partition(&table, shards));
        let mut remote = RemoteShardDataset::new(addrs);
        if prefetch > 0 {
            remote = remote.with_prefetch(PrefetchPolicy::per_shard(prefetch * 8));
        }
        let dataset = remote.into_dataset();
        prop_assert_eq!(
            session.explain(&dataset, &query).path,
            ScanPath::Remote { remote: shards, local: 0 }
        );
        let served = session.execute(&dataset, &query);
        assert_identical(single, served)?;
    }

    /// The adversarial all-ties case (one tie group across every shard and
    /// machine boundary) stays bit-identical through every transport.
    #[test]
    fn all_ties_partitions_survive_every_transport(
        table in table_with(1),
        shards in 2usize..5,
        k in 1usize..4,
    ) {
        let query = TopkQuery::new(k).with_p_tau(1e-3).with_u_topk(false);
        let mut session = Session::new();
        let single = session.execute(&Dataset::stream(table.to_source()), &query);

        // Prefetched merge.
        let parts: Vec<VecSource> = partition(&table, shards)
            .into_iter()
            .map(VecSource::new)
            .collect();
        let handle = ScanHandle::merged_prefetched(parts, PrefetchPolicy::per_shard(2));
        let prefetched = session.execute(&Dataset::stream(handle), &query);
        assert_identical(single.clone(), prefetched)?;

        // Remote loopback.
        let addrs = serve_shards(partition(&table, shards));
        let served = session.execute(&RemoteShardDataset::new(addrs).into_dataset(), &query);
        assert_identical(single, served)?;
    }

    /// Mixing remote and local shards of one partition is bit-identical to
    /// the in-process scan.
    #[test]
    fn mixed_remote_and_local_shards_match(
        table in table_with(4),
        shards in 2usize..5,
        k in 1usize..4,
    ) {
        let query = TopkQuery::new(k).with_p_tau(1e-3).with_u_topk(false);
        let mut session = Session::new();
        let single = session.execute(&Dataset::stream(table.to_source()), &query);
        let mut parts = partition(&table, shards);
        let local: Vec<Vec<SourceTuple>> = parts.split_off(shards / 2);
        let local_count = local.len();
        let addrs = serve_shards(parts);
        let dataset = RemoteShardDataset::new(addrs)
            .with_local_shards(local_count, move || {
                Ok(local
                    .iter()
                    .map(|shard| {
                        Box::new(VecSource::new(shard.clone())) as Box<dyn TupleSource + Send>
                    })
                    .collect())
            })
            .into_dataset();
        let mixed = session.execute(&dataset, &query);
        assert_identical(single, mixed)?;
    }
}

/// A source that yields `good` tuples, then fails.
struct FailsAfter {
    tuples: Vec<SourceTuple>,
    served: usize,
}

impl TupleSource for FailsAfter {
    fn next_tuple(&mut self) -> Result<Option<SourceTuple>> {
        if self.served >= self.tuples.len() {
            return Err(Error::Source("shard backend failed mid-stream".into()));
        }
        self.served += 1;
        Ok(Some(self.tuples[self.served - 1]))
    }
}

fn descending_tuples(n: u64) -> Vec<SourceTuple> {
    (0..n)
        .map(|i| SourceTuple::independent(UncertainTuple::new(i, (n - i) as f64, 0.9).unwrap()))
        .collect()
}

/// A producer that errors mid-stream surfaces as `Error::Source` through a
/// feed, never as a hang or a silently short stream.
#[test]
fn feed_producer_error_surfaces_as_source_error() {
    let feed = TupleFeed::spawn(
        FailsAfter {
            tuples: descending_tuples(5),
            served: 0,
        },
        2,
    );
    // A draining query (U-Topk on) must hit the failure.
    let err = Session::new()
        .execute(&Dataset::stream(feed), &TopkQuery::new(2))
        .unwrap_err();
    assert!(
        matches!(&err, Error::Source(m) if m.contains("mid-stream")),
        "{err:?}"
    );
}

/// A server that dies mid-stream (socket closed without the end frame)
/// surfaces as `Error::Source` on the querying side.
#[test]
fn remote_server_dying_mid_stream_is_a_source_error() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    std::thread::spawn(move || {
        let (stream, _) = listener.accept().unwrap();
        let mut writer = WireWriter::new(std::io::BufWriter::new(stream), Some(100)).unwrap();
        for t in descending_tuples(3) {
            writer.write_tuple(&t).unwrap();
        }
        // Drop without the end frame: the connection just dies.
    });
    let err = Session::new()
        .execute(
            &RemoteShardDataset::new([addr]).into_dataset(),
            &TopkQuery::new(2),
        )
        .unwrap_err();
    assert!(matches!(err, Error::Source(_)), "{err:?}");
}

/// A server that forwards its own source failure delivers that failure (as
/// `Error::Source`) to the querying side through the error frame.
#[test]
fn remote_source_failure_is_forwarded_through_the_wire() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    std::thread::spawn(move || {
        let (stream, _) = listener.accept().unwrap();
        let writer = WireWriter::new(std::io::BufWriter::new(stream), None).unwrap();
        let _ = writer.serve(&mut FailsAfter {
            tuples: descending_tuples(4),
            served: 0,
        });
    });
    let err = Session::new()
        .execute(
            &RemoteShardDataset::new([addr]).into_dataset(),
            &TopkQuery::new(2),
        )
        .unwrap_err();
    assert!(
        matches!(&err, Error::Source(m) if m.contains("shard backend failed")),
        "{err:?}"
    );
}
