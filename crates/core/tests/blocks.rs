//! Property-based validation of the columnar block pull path: for **any**
//! table, partitioning and block-ask schedule, `next_block` composed through
//! every source kind — in-memory vectors, loser-tree merges of shards
//! (including all-ties partitions), feed channels, the wire codec in both
//! framings, and a negotiated loopback remote scan — yields the
//! bit-identical tuple sequence of the tuple-at-a-time path; and the gated
//! rank scan admits the identical Theorem-2 prefix with the identical
//! stopping depth even when the gate closes in the middle of a pulled
//! block.

use std::net::TcpListener;

use proptest::prelude::*;
use ttk_core::{
    serve_stream, Dataset, QueryAnswer, RankScan, RemoteShardDataset, ScanGate, ServeOptions,
    Session, TopkQuery, MAX_BLOCK_TUPLES,
};
use ttk_uncertain::{
    GroupKey, MergeSource, Result, SourceTuple, TupleFeed, TupleSource, UncertainTable, VecSource,
    WireReader, WireWriter,
};

mod support;
use support::table_with;

/// The full bit pattern of one streamed tuple: id, score bits, probability
/// bits and group key. Two drains agree iff their key sequences are equal.
type TupleKey = (u64, u64, u64, Option<u64>);

fn key(t: &SourceTuple) -> TupleKey {
    (
        t.tuple.id().raw(),
        t.tuple.score().to_bits(),
        t.tuple.prob().to_bits(),
        match t.group {
            GroupKey::Independent => None,
            GroupKey::Shared(k) => Some(k),
        },
    )
}

/// Drains a source tuple-at-a-time.
fn scalar_drain(source: &mut dyn TupleSource) -> Vec<TupleKey> {
    let mut out = Vec::new();
    while let Some(t) = source.next_tuple().unwrap() {
        out.push(key(&t));
    }
    out
}

/// Drains a source block-wise, cycling through the ask schedule so block
/// boundaries land in arbitrary places (including mid-tie-group).
fn block_drain(source: &mut dyn TupleSource, asks: &[usize]) -> Vec<TupleKey> {
    let mut out = Vec::new();
    let mut turn = 0usize;
    loop {
        let ask = asks[turn % asks.len()];
        turn += 1;
        match source.next_block(ask).unwrap() {
            Some(block) => out.extend(block.iter().map(|t| key(&t))),
            None => return out,
        }
    }
}

/// Round-robin partition of the table's rank-ordered stream (global group
/// keys preserved).
fn partition(table: &UncertainTable, shards: usize) -> Vec<VecSource> {
    let mut parts: Vec<Vec<SourceTuple>> = (0..shards).map(|_| Vec::new()).collect();
    let mut source = table.to_source();
    let mut index = 0usize;
    while let Some(t) = source.next_tuple().unwrap() {
        parts[index % shards].push(t);
        index += 1;
    }
    parts.into_iter().map(VecSource::new).collect()
}

/// A block-ask schedule that forces short, long and degenerate (1) asks.
fn ask_schedule() -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(1usize..70, 1..6)
}

fn assert_identical(
    a: Result<QueryAnswer>,
    b: Result<QueryAnswer>,
) -> std::result::Result<(), TestCaseError> {
    match (a, b) {
        (Ok(a), Ok(b)) => {
            prop_assert_eq!(a.distribution, b.distribution);
            prop_assert_eq!(a.scan_depth, b.scan_depth);
            prop_assert_eq!(a.typical.scores(), b.typical.scores());
            let (ua, ub) = (a.u_topk.map(|u| u.vector), b.u_topk.map(|u| u.vector));
            prop_assert_eq!(ua, ub);
        }
        (Err(_), Err(_)) => {}
        (a, b) => prop_assert!(false, "paths disagree: {:?} vs {:?}", a, b),
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// In-memory vector source: block pulls reproduce the scalar sequence
    /// for any ask schedule.
    #[test]
    fn vec_source_blocks_match_scalar(
        table in table_with(4),
        asks in ask_schedule(),
    ) {
        let expected = scalar_drain(&mut table.to_source());
        let got = block_drain(&mut table.to_source(), &asks);
        prop_assert_eq!(got, expected);
    }

    /// Merged shards (including the all-ties partition when `span == 1`):
    /// the loser-tree's run-draining block path reproduces the scalar merge
    /// exactly, tie groups and all.
    #[test]
    fn merged_shards_blocks_match_scalar(
        table in table_with(4),
        shards in 1usize..5,
        asks in ask_schedule(),
    ) {
        let mut scalar_parts = partition(&table, shards);
        let expected =
            scalar_drain(&mut MergeSource::new(scalar_parts.iter_mut().collect()));
        let mut block_parts = partition(&table, shards);
        let got = block_drain(
            &mut MergeSource::new(block_parts.iter_mut().collect()),
            &asks,
        );
        prop_assert_eq!(got, expected);
    }

    /// Feed channels (producer thread + bounded buffer): block pulls on the
    /// consumer side reproduce the scalar sequence for any buffer size.
    #[test]
    fn feed_blocks_match_scalar(
        table in table_with(4),
        buffer in 1usize..48,
        asks in ask_schedule(),
    ) {
        let expected = scalar_drain(&mut table.to_source());
        let mut feed = TupleFeed::spawn(table.to_source(), buffer);
        let got = block_drain(&mut feed, &asks);
        prop_assert_eq!(got, expected);
    }

    /// The wire codec: the same relation encoded as per-tuple frames and as
    /// kind-20 block frames, then drained scalar and block-wise — all four
    /// framing x pull combinations decode the bit-identical sequence.
    #[test]
    fn wire_framings_match_scalar(
        table in table_with(4),
        asks in ask_schedule(),
        encode_block in 1usize..600,
    ) {
        let expected = scalar_drain(&mut table.to_source());
        let mut tuple_wire = Vec::new();
        let mut writer = WireWriter::new(&mut tuple_wire, Some(table.len())).unwrap();
        let mut source = table.to_source();
        while let Some(t) = source.next_tuple().unwrap() {
            writer.write_tuple(&t).unwrap();
        }
        writer.finish().unwrap();
        let mut block_wire = Vec::new();
        let mut writer = WireWriter::new(&mut block_wire, Some(table.len())).unwrap();
        let mut source = table.to_source();
        while let Some(block) = source.next_block(encode_block).unwrap() {
            writer.write_block(&block).unwrap();
        }
        writer.finish().unwrap();
        for wire in [&tuple_wire, &block_wire] {
            prop_assert_eq!(scalar_drain(&mut WireReader::new(&wire[..])), expected.clone());
            prop_assert_eq!(
                block_drain(&mut WireReader::new(&wire[..]), &asks),
                expected.clone()
            );
        }
    }

    /// Mid-block gate closure: the block-pulling rank scan admits exactly
    /// the tuples a tuple-at-a-time gate admits, stops at the identical
    /// depth, rejects the identical look-ahead, and accounts for every
    /// over-read row in the surplus.
    #[test]
    fn gated_scan_closes_mid_block_identically(
        table in table_with(4),
        shards in 1usize..5,
        k in 1usize..5,
    ) {
        let p_tau = 1e-3;
        // Tuple-at-a-time oracle over the merged stream.
        let mut parts = partition(&table, shards);
        let mut merged = MergeSource::new(parts.iter_mut().collect());
        let mut gate = ScanGate::new(k, p_tau).unwrap();
        let mut admitted: Vec<TupleKey> = Vec::new();
        let mut rejected: Option<TupleKey> = None;
        while let Some(t) = merged.next_tuple().unwrap() {
            if gate.admit(t.tuple.score(), t.tuple.prob(), t.group) {
                admitted.push(key(&t));
            } else {
                rejected = Some(key(&t));
                break;
            }
        }
        // The block-pulling executor path over a fresh identical stream.
        let mut parts = partition(&table, shards);
        let mut merged = MergeSource::new(parts.iter_mut().collect());
        let mut gate = ScanGate::new(k, p_tau).unwrap();
        let prefix = RankScan::new().collect_prefix(&mut merged, &mut gate).unwrap();
        prop_assert_eq!(prefix.depth(), admitted.len());
        let got: Vec<TupleKey> = prefix
            .table
            .tuples()
            .iter()
            .zip(&prefix.keys)
            .map(|(t, g)| {
                key(&SourceTuple {
                    tuple: *t,
                    group: *g,
                })
            })
            .collect();
        prop_assert_eq!(got, admitted);
        prop_assert_eq!(prefix.pending.as_ref().map(key), rejected);
        // Over-read accounting: every pulled row is either admitted, the
        // rejected look-ahead, or sits in the surplus — and the surplus is
        // bounded by the largest block ask.
        prop_assert_eq!(
            prefix.pulled,
            prefix.depth() + usize::from(prefix.pending.is_some()) + prefix.surplus.len()
        );
        prop_assert!(prefix.surplus.len() <= MAX_BLOCK_TUPLES);
    }

    /// The adversarial all-ties case: every tuple ties on score, so one tie
    /// group spans every shard and every block boundary. The merge's
    /// run-draining block path must still reproduce the scalar sequence.
    #[test]
    fn all_ties_merged_blocks_match_scalar(
        table in table_with(1),
        shards in 2usize..5,
        asks in ask_schedule(),
    ) {
        let mut scalar_parts = partition(&table, shards);
        let expected =
            scalar_drain(&mut MergeSource::new(scalar_parts.iter_mut().collect()));
        let mut block_parts = partition(&table, shards);
        let got = block_drain(
            &mut MergeSource::new(block_parts.iter_mut().collect()),
            &asks,
        );
        prop_assert_eq!(got, expected);
    }

    /// All-ties through the gate: the gate may only close at a tie-group
    /// boundary, and the block scan must agree with the tuple-at-a-time
    /// oracle on where that is.
    #[test]
    fn all_ties_gated_scan_matches_oracle(
        table in table_with(1),
        shards in 2usize..5,
        k in 1usize..5,
    ) {
        let p_tau = 1e-3;
        let mut parts = partition(&table, shards);
        let mut merged = MergeSource::new(parts.iter_mut().collect());
        let mut gate = ScanGate::new(k, p_tau).unwrap();
        let mut admitted = 0usize;
        while let Some(t) = merged.next_tuple().unwrap() {
            if !gate.admit(t.tuple.score(), t.tuple.prob(), t.group) {
                break;
            }
            admitted += 1;
        }
        let mut parts = partition(&table, shards);
        let mut merged = MergeSource::new(parts.iter_mut().collect());
        let mut gate = ScanGate::new(k, p_tau).unwrap();
        let prefix = RankScan::new().collect_prefix(&mut merged, &mut gate).unwrap();
        prop_assert_eq!(prefix.depth(), admitted);
    }

    /// Loopback remote: a negotiated block-frame scan and a per-tuple wire
    /// scan are both bit-identical to the in-process single-source answer.
    #[test]
    fn remote_block_negotiation_is_bit_identical(
        table in table_with(4),
        shards in 1usize..4,
        k in 1usize..4,
        u_topk in any::<bool>(),
    ) {
        let query = TopkQuery::new(k).with_p_tau(1e-3).with_u_topk(u_topk);
        let mut session = Session::new();
        let single = session.execute(&Dataset::stream(table.to_source()), &query);
        let addrs: Vec<String> = partition(&table, shards)
            .into_iter()
            .map(|mut source| {
                let listener = TcpListener::bind("127.0.0.1:0").unwrap();
                let addr = listener.local_addr().unwrap().to_string();
                let options = ServeOptions {
                    pushdown_wait: std::time::Duration::from_millis(2),
                    ..ServeOptions::default()
                };
                std::thread::spawn(move || {
                    // One connection per wire mode below.
                    for _ in 0..2 {
                        let Ok((stream, _)) = listener.accept() else {
                            return;
                        };
                        source.rewind();
                        let _ = serve_stream(stream, &mut source, None, &options);
                    }
                });
                addr
            })
            .collect();
        for wire_blocks in [true, false] {
            let remote = RemoteShardDataset::new(addrs.clone())
                .with_wire_blocks(wire_blocks)
                .into_dataset();
            let answer = session.execute(&remote, &query);
            assert_identical(single.clone(), answer)?;
        }
    }
}
