//! Property-based validation of the spilled-CSV replay's block pull path:
//! for **any** imported relation, run-buffer size (so any number of spilled
//! runs) and block-ask schedule, `next_block` over the run-file replay —
//! with and without per-run prefetching — yields the bit-identical tuple
//! sequence of the tuple-at-a-time replay.

use std::sync::Arc;

use proptest::prelude::*;
use ttk_pdb::{parse_expression, CsvOptions, SpillIndex, SpillOptions};
use ttk_uncertain::{GroupKey, PrefetchPolicy, SourceTuple, TupleSource};

/// The full bit pattern of one streamed tuple: id, score bits, probability
/// bits and group key.
type TupleKey = (u64, u64, u64, Option<u64>);

fn key(t: &SourceTuple) -> TupleKey {
    (
        t.tuple.id().raw(),
        t.tuple.score().to_bits(),
        t.tuple.prob().to_bits(),
        match t.group {
            GroupKey::Independent => None,
            GroupKey::Shared(k) => Some(k),
        },
    )
}

fn scalar_drain(source: &mut dyn TupleSource) -> Vec<TupleKey> {
    let mut out = Vec::new();
    while let Some(t) = source.next_tuple().unwrap() {
        out.push(key(&t));
    }
    out
}

fn block_drain(source: &mut dyn TupleSource, asks: &[usize]) -> Vec<TupleKey> {
    let mut out = Vec::new();
    let mut turn = 0usize;
    loop {
        let ask = asks[turn % asks.len()];
        turn += 1;
        match source.next_block(ask).unwrap() {
            Some(block) => out.extend(block.iter().map(|t| key(&t))),
            None => return out,
        }
    }
}

/// Raw rows: (score, probability tenths, grouped flag). Scores repeat (ties)
/// and some rows share ME groups.
fn csv_rows() -> impl Strategy<Value = Vec<(u32, u32, bool)>> {
    proptest::collection::vec((0u32..50, 1u32..=10, any::<bool>()), 1..120)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn spilled_replay_blocks_match_scalar(
        rows in csv_rows(),
        run_buffer in 1usize..40,
        asks in proptest::collection::vec(1usize..70, 1..6),
        prefetch_buffer in 1usize..8,
    ) {
        let mut csv = String::from("score,probability,group_key\n");
        for (i, (score, tenths, grouped)) in rows.iter().enumerate() {
            let group = if *grouped {
                format!("g{}", i % 7)
            } else {
                String::new()
            };
            csv.push_str(&format!("{score},{:.1},{group}\n", *tenths as f64 / 10.0));
        }
        let expr = parse_expression("score").unwrap();
        let index = Arc::new(
            SpillIndex::from_csv_text(
                &csv,
                &CsvOptions::default(),
                &expr,
                &SpillOptions::with_run_buffer(run_buffer),
            )
            .unwrap(),
        );
        for prefetch in [
            PrefetchPolicy::Off,
            PrefetchPolicy::per_shard(prefetch_buffer),
        ] {
            let expected = scalar_drain(&mut index.replay_with(prefetch).unwrap());
            prop_assert_eq!(expected.len(), rows.len());
            let got = block_drain(&mut index.replay_with(prefetch).unwrap(), &asks);
            prop_assert_eq!(got, expected);
        }
    }
}
