//! CSV-backed [`Dataset`]s: the `ttk-pdb` implementation of the unified
//! execution API's [`DatasetProvider`] seam.
//!
//! A [`CsvDataset`] bundles a CSV input (file path, inline text, or the
//! shard files of one partitioned relation), the [`CsvOptions`] naming its
//! metadata columns, the scoring [`Expr`], and optionally the
//! [`SpillOptions`] of an out-of-core scan. It caches whatever the first
//! open computes — the scored rank-ordered sources for in-memory inputs, the
//! external-sort [`SpillIndex`] for spilled ones — so **plan once, run
//! many** holds: a second query against the same spilled CSV replays the
//! existing run files instead of re-reading and re-sorting the relation.
//!
//! ```
//! use ttk_core::{Session, TopkQuery};
//! use ttk_pdb::{parse_expression, CsvDataset, CsvOptions};
//!
//! let csv = "\
//! score,probability,group_key
//! 9,0.5,g1
//! 7,1.0,
//! 4,0.5,g1
//! ";
//! let dataset =
//!     CsvDataset::from_text("demo", csv, CsvOptions::default(), parse_expression("score")?)
//!         .into_dataset();
//! let mut session = Session::new();
//! let query = TopkQuery::new(1).with_u_topk(false);
//! // Replayable: the scoring pass is cached after the first execute.
//! let first = session.execute(&dataset, &query)?;
//! let second = session.execute(&dataset, &query)?;
//! assert_eq!(first.distribution, second.distribution);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use ttk_core::{Dataset, DatasetPlan, DatasetProvider, ScanPath};
use ttk_uncertain::{PrefetchPolicy, ScanHandle, SourceTuple, TupleSource, VecSource};

use crate::csv::{
    shard_sources_from_csv_with, CsvOptions, ShardImportOptions, SpillIndex, SpillOptions,
};
use crate::error::{PdbError, Result};
use crate::expr::Expr;

/// The physical CSV input of a [`CsvDataset`].
#[derive(Debug, Clone)]
enum CsvInput {
    /// A single CSV file on disk.
    Path(PathBuf),
    /// Inline CSV text.
    Text(String),
    /// The shard files of one partitioned relation (shared id space and
    /// group-key namespace).
    ShardPaths(Vec<PathBuf>),
    /// Inline shard texts of one partitioned relation.
    ShardTexts(Vec<String>),
}

impl CsvInput {
    fn shard_count(&self) -> usize {
        match self {
            CsvInput::Path(_) | CsvInput::Text(_) => 1,
            CsvInput::ShardPaths(paths) => paths.len(),
            CsvInput::ShardTexts(texts) => texts.len(),
        }
    }

    fn is_sharded(&self) -> bool {
        matches!(self, CsvInput::ShardPaths(_) | CsvInput::ShardTexts(_))
    }
}

/// What the first open computed and every later open replays.
enum Cache {
    /// Nothing opened yet.
    Empty,
    /// In-memory scoring pass done: pristine rank-ordered sources, cloned
    /// per open.
    Scored(Vec<VecSource>),
    /// External sort done: the reusable run-file index.
    Spilled(Arc<SpillIndex>),
}

/// A CSV relation as a replayable [`Dataset`] input.
///
/// See the [module documentation](self) for the caching behaviour. Convert
/// with [`CsvDataset::into_dataset`] and run through a
/// [`Session`](ttk_core::Session).
pub struct CsvDataset {
    input: CsvInput,
    options: CsvOptions,
    score: Expr,
    spill: Option<SpillOptions>,
    prefetch: PrefetchPolicy,
    import: ShardImportOptions,
    cache: Mutex<Cache>,
    label: String,
}

impl std::fmt::Debug for CsvDataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CsvDataset")
            .field("label", &self.label)
            .field("input", &self.input)
            .field("spill", &self.spill)
            .field("prefetch", &self.prefetch)
            .finish()
    }
}

impl CsvDataset {
    fn new(input: CsvInput, options: CsvOptions, score: Expr, label: String) -> Self {
        CsvDataset {
            input,
            options,
            score,
            spill: None,
            prefetch: PrefetchPolicy::Off,
            import: ShardImportOptions::default(),
            cache: Mutex::new(Cache::Empty),
            label,
        }
    }

    /// A dataset over a single CSV file on disk.
    pub fn from_path(path: impl Into<PathBuf>, options: CsvOptions, score: Expr) -> Self {
        let path = path.into();
        let label = path.to_string_lossy().into_owned();
        CsvDataset::new(CsvInput::Path(path), options, score, label)
    }

    /// A dataset over inline CSV text.
    pub fn from_text(
        label: impl Into<String>,
        text: impl Into<String>,
        options: CsvOptions,
        score: Expr,
    ) -> Self {
        CsvDataset::new(CsvInput::Text(text.into()), options, score, label.into())
    }

    /// A dataset over the shard files of **one partitioned relation**: the
    /// shards share one tuple-id space and one group-key namespace, and open
    /// under the loser-tree k-way merge.
    pub fn from_shard_paths(
        paths: impl IntoIterator<Item = impl Into<PathBuf>>,
        options: CsvOptions,
        score: Expr,
    ) -> Self {
        let paths: Vec<PathBuf> = paths.into_iter().map(Into::into).collect();
        let label = paths
            .first()
            .map(|p| format!("{} ..", p.to_string_lossy()))
            .unwrap_or_else(|| "<no shards>".to_string());
        CsvDataset::new(CsvInput::ShardPaths(paths), options, score, label)
    }

    /// A dataset over inline shard texts of one partitioned relation.
    pub fn from_shard_texts(
        label: impl Into<String>,
        texts: impl IntoIterator<Item = impl Into<String>>,
        options: CsvOptions,
        score: Expr,
    ) -> Self {
        CsvDataset::new(
            CsvInput::ShardTexts(texts.into_iter().map(Into::into).collect()),
            options,
            score,
            label.into(),
        )
    }

    /// Enables the out-of-core scan: the first open external-sorts the CSV
    /// through a bounded run buffer and keeps the resulting [`SpillIndex`];
    /// every later open replays the run files without re-sorting.
    ///
    /// # Errors
    ///
    /// [`PdbError::InvalidQuery`] for sharded inputs — spill options apply to
    /// single-file datasets only, and rejecting the combination here keeps
    /// `plan`/`open` (and therefore `explain`/`execute`) consistent.
    pub fn with_spill(mut self, spill: SpillOptions) -> Result<Self> {
        if self.input.is_sharded() {
            return Err(PdbError::InvalidQuery(format!(
                "spill options apply to a single-file CSV dataset, but `{}` is a {}-shard \
                 set; drop the spill configuration or merge the shards into one file",
                self.label,
                self.input.shard_count()
            )));
        }
        self.spill = Some(spill);
        Ok(self)
    }

    /// Enables per-shard prefetching: every shard stream (or replayed spill
    /// run) of a merged open is moved onto its own producer thread behind a
    /// bounded channel, overlapping per-shard I/O and decoding with the
    /// merge. Single-stream opens are unaffected; the scanned stream is
    /// bit-identical either way.
    pub fn with_prefetch(mut self, prefetch: PrefetchPolicy) -> Self {
        self.prefetch = prefetch;
        self
    }

    /// Sets the [`ShardImportOptions`] of the scoring pass — the id base and
    /// stable hashed group keys a `ttk serve-shard` process uses so the
    /// shard it serves slots into the relation's shared id space and
    /// group-key namespace without coordinating with its peers.
    pub fn with_import(mut self, import: ShardImportOptions) -> Self {
        self.import = import;
        self
    }

    /// Eagerly runs the first open — the scoring pass (or external sort)
    /// that populates the reuse cache — and discards the stream.
    ///
    /// A long-lived serving process (`ttk serve`) calls this at startup so a
    /// missing file or malformed CSV fails the daemon before it accepts its
    /// first query, and that first query pays a warm open instead of the
    /// cold scoring pass.
    ///
    /// # Errors
    ///
    /// Whatever the first open would have returned: I/O failures, CSV or
    /// expression errors, spill failures.
    pub fn warm(&self) -> Result<()> {
        self.open_impl().map(drop)
    }

    /// Drains the scored scan into owned rows, in rank order.
    ///
    /// This is the bridge from a CSV file to a live append: `ttk append
    /// --file` scores the CSV exactly like `ttk serve` would serve it, then
    /// ships the resulting rows to the daemon's
    /// [`AppendLog`](ttk_core::AppendLog) instead of opening a local scan.
    ///
    /// ```
    /// use ttk_pdb::{parse_expression, CsvDataset, CsvOptions};
    ///
    /// let csv = "score,probability,group_key\n9,0.5,g1\n7,1.0,\n";
    /// let dataset =
    ///     CsvDataset::from_text("feed", csv, CsvOptions::default(), parse_expression("score")?);
    /// let rows = dataset.scored_rows()?;
    /// assert_eq!(rows.len(), 2);
    /// assert_eq!(rows[0].tuple.score(), 9.0);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    ///
    /// # Errors
    ///
    /// Whatever the open would have returned: I/O failures, CSV or
    /// expression errors, spill failures.
    pub fn scored_rows(&self) -> Result<Vec<SourceTuple>> {
        let mut handle = self.open_impl()?;
        let mut rows = Vec::new();
        while let Some(row) = handle.next_tuple()? {
            rows.push(row);
        }
        Ok(rows)
    }

    /// Wraps the dataset into the unified [`Dataset`] type consumed by
    /// [`Session`](ttk_core::Session).
    pub fn into_dataset(self) -> Dataset {
        let label = self.label.clone();
        Dataset::from_provider(self).with_label(label)
    }

    /// The external-sort index, once a spilled open has built it (for
    /// diagnostics and reuse assertions).
    pub fn spill_index(&self) -> Option<Arc<SpillIndex>> {
        match &*self.cache.lock().expect("csv dataset cache poisoned") {
            Cache::Spilled(index) => Some(Arc::clone(index)),
            _ => None,
        }
    }

    fn open_impl(&self) -> Result<ScanHandle> {
        let mut cache = self.cache.lock().expect("csv dataset cache poisoned");
        if let Some(spill) = &self.spill {
            let index = match &*cache {
                Cache::Spilled(index) => Arc::clone(index),
                _ => {
                    // `with_spill` rejects sharded inputs, so only the
                    // single-file kinds can reach this arm.
                    let built = match &self.input {
                        CsvInput::Path(path) => SpillIndex::from_csv_path_with(
                            path,
                            &self.options,
                            &self.score,
                            spill,
                            &self.import,
                        )?,
                        CsvInput::Text(text) => SpillIndex::from_csv_text_with(
                            text,
                            &self.options,
                            &self.score,
                            spill,
                            &self.import,
                        )?,
                        CsvInput::ShardPaths(_) | CsvInput::ShardTexts(_) => {
                            unreachable!("with_spill rejects sharded inputs")
                        }
                    };
                    let index = Arc::new(built);
                    *cache = Cache::Spilled(Arc::clone(&index));
                    index
                }
            };
            return Ok(ScanHandle::single(index.replay_with(self.prefetch)?));
        }

        let sources = match &*cache {
            Cache::Scored(sources) => sources.clone(),
            _ => {
                let scored = match &self.input {
                    CsvInput::Path(path) => {
                        let text = std::fs::read_to_string(path)?;
                        shard_sources_from_csv_with(
                            &[text.as_str()],
                            &self.options,
                            &self.score,
                            &self.import,
                        )?
                    }
                    CsvInput::Text(text) => shard_sources_from_csv_with(
                        &[text.as_str()],
                        &self.options,
                        &self.score,
                        &self.import,
                    )?,
                    CsvInput::ShardPaths(paths) => {
                        let texts: Vec<String> = paths
                            .iter()
                            .map(std::fs::read_to_string)
                            .collect::<std::io::Result<_>>()?;
                        let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
                        shard_sources_from_csv_with(
                            &refs,
                            &self.options,
                            &self.score,
                            &self.import,
                        )?
                    }
                    CsvInput::ShardTexts(texts) => {
                        let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
                        shard_sources_from_csv_with(
                            &refs,
                            &self.options,
                            &self.score,
                            &self.import,
                        )?
                    }
                };
                *cache = Cache::Scored(scored.clone());
                scored
            }
        };
        Ok(if sources.len() == 1 {
            let source = sources.into_iter().next().expect("one source");
            ScanHandle::single(source)
        } else {
            ScanHandle::merged_prefetched(sources, self.prefetch)
        })
    }
}

impl DatasetProvider for CsvDataset {
    fn open(&self) -> ttk_uncertain::Result<ScanHandle> {
        self.open_impl().map_err(|error| match error {
            // Model-level failures keep their typed form.
            PdbError::Core(inner) => inner,
            // Everything else crosses the crate boundary as a source error.
            other => ttk_uncertain::Error::Source(other.to_string()),
        })
    }

    fn plan(&self) -> DatasetPlan {
        let cache = self.cache.lock().expect("csv dataset cache poisoned");
        // `with_spill` rejects sharded inputs, so a configured spill always
        // means the single-file external-sort path — plan and open agree.
        if self.spill.is_some() {
            return match &*cache {
                Cache::Spilled(index) => DatasetPlan {
                    path: match self.prefetch.buffer() {
                        Some(buffer) => ScanPath::Prefetched {
                            shards: index.run_count(),
                            buffer,
                        },
                        None => ScanPath::SpilledRuns {
                            runs: Some(index.run_count()),
                            spilled: Some(index.spilled_run_count()),
                            reused: true,
                        },
                    },
                    rows: Some(index.len()),
                },
                _ => DatasetPlan {
                    path: ScanPath::SpilledRuns {
                        runs: None,
                        spilled: None,
                        reused: false,
                    },
                    rows: None,
                },
            };
        }
        let rows = match &*cache {
            Cache::Scored(sources) => sources.iter().map(|s| s.size_hint()).sum(),
            _ => None,
        };
        let shards = self.input.shard_count();
        DatasetPlan {
            path: if shards == 1 {
                ScanPath::Stream
            } else {
                match self.prefetch.buffer() {
                    Some(buffer) => ScanPath::Prefetched { shards, buffer },
                    None => ScanPath::MergedShards { shards },
                }
            },
            rows,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_expression;
    use ttk_core::{Session, TopkQuery};

    const SAMPLE: &str = "\
score,probability,group_key
9,0.5,g1
7,1.0,
4,0.5,g1
2,0.8,g2
";

    #[test]
    fn text_dataset_replays_and_plans() {
        let dataset = CsvDataset::from_text(
            "sample",
            SAMPLE,
            CsvOptions::default(),
            parse_expression("score").unwrap(),
        );
        assert_eq!(dataset.plan().rows, None);
        let unified = dataset.into_dataset();
        let mut session = Session::new();
        let query = TopkQuery::new(2).with_u_topk(false);
        let first = session.execute(&unified, &query).unwrap();
        // After the first open the scoring pass is cached: rows are known.
        let plan = session.explain(&unified, &query);
        assert_eq!(plan.path, ScanPath::Stream);
        assert_eq!(plan.rows, Some(4));
        let second = session.execute(&unified, &query).unwrap();
        assert_eq!(first.distribution, second.distribution);
    }

    #[test]
    fn shard_texts_open_under_a_merge() {
        let shard_a = "score,probability,group_key\n9,0.5,g1\n4,0.5,g1\n";
        let shard_b = "score,probability,group_key\n7,1.0,\n2,0.8,g2\n";
        let sharded = CsvDataset::from_shard_texts(
            "two-shards",
            [shard_a, shard_b],
            CsvOptions::default(),
            parse_expression("score").unwrap(),
        )
        .into_dataset();
        // Ids count across shards in shard order, so the reference is the
        // import of the shard concatenation.
        let concatenated = "score,probability,group_key\n9,0.5,g1\n4,0.5,g1\n7,1.0,\n2,0.8,g2\n";
        let single = CsvDataset::from_text(
            "single",
            concatenated,
            CsvOptions::default(),
            parse_expression("score").unwrap(),
        )
        .into_dataset();
        let mut session = Session::new();
        let query = TopkQuery::new(2).with_u_topk(false);
        let merged = session.execute(&sharded, &query).unwrap();
        let reference = session.execute(&single, &query).unwrap();
        assert_eq!(merged.distribution, reference.distribution);
        assert_eq!(
            session.explain(&sharded, &query).path,
            ScanPath::MergedShards { shards: 2 }
        );
    }

    #[test]
    fn second_query_on_a_spilled_csv_reuses_the_spill_index() {
        let dir = std::env::temp_dir().join(format!("ttk-dataset-spill-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut csv = String::from("score,probability,group_key\n");
        for i in 0..200 {
            csv.push_str(&format!("{},0.{}5,\n", (i * 7) % 83, 1 + i % 8));
        }
        let spill = SpillOptions {
            run_buffer_tuples: 32,
            temp_dir: Some(dir.clone()),
            ..SpillOptions::default()
        };
        let dataset = CsvDataset::from_text(
            "spilled",
            &csv,
            CsvOptions::default(),
            parse_expression("score").unwrap(),
        )
        .with_spill(spill)
        .unwrap()
        .into_dataset();
        let mut session = Session::new();
        let query = TopkQuery::new(3).with_u_topk(false);

        // Before the first query the external sort has not run.
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 0);
        let first = session.execute(&dataset, &query).unwrap();
        let run_files: Vec<std::path::PathBuf> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .collect();
        assert_eq!(run_files.len(), 200 / 32, "the first query spills runs");
        let modified: Vec<std::time::SystemTime> = run_files
            .iter()
            .map(|p| std::fs::metadata(p).unwrap().modified().unwrap())
            .collect();

        // The second query replays the cached index: identical answer, the
        // very same run files (none re-created, none added, none rewritten).
        let second = session.execute(&dataset, &query).unwrap();
        assert_eq!(first.distribution, second.distribution);
        assert_eq!(first.scan_depth, second.scan_depth);
        let after: Vec<std::path::PathBuf> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .collect();
        assert_eq!(run_files, after, "run files were re-created");
        for (path, stamp) in run_files.iter().zip(&modified) {
            assert_eq!(
                &std::fs::metadata(path).unwrap().modified().unwrap(),
                stamp,
                "{path:?} was rewritten"
            );
        }
        // The plan now reports the reused external-sort path.
        let plan = session.explain(&dataset, &query);
        assert_eq!(
            plan.path,
            ScanPath::SpilledRuns {
                runs: Some(200 / 32 + 1),
                spilled: Some(200 / 32),
                reused: true
            }
        );
        assert_eq!(plan.rows, Some(200));

        drop(dataset);
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 0);
        std::fs::remove_dir(&dir).ok();
    }

    #[test]
    fn spill_on_shards_is_rejected_at_construction() {
        let err = CsvDataset::from_shard_texts(
            "bad",
            ["score,probability\n1,0.5\n"],
            CsvOptions {
                probability_column: "probability".into(),
                group_column: None,
            },
            parse_expression("score").unwrap(),
        )
        .with_spill(SpillOptions::with_run_buffer(4))
        .unwrap_err();
        assert!(err.to_string().contains("single-file"), "{err}");
    }

    #[test]
    fn missing_file_errors_surface_through_open() {
        let dataset = CsvDataset::from_path(
            "/nonexistent/ttk-dataset.csv",
            CsvOptions::default(),
            parse_expression("score").unwrap(),
        )
        .into_dataset();
        let err = Session::new()
            .execute(&dataset, &TopkQuery::new(1))
            .unwrap_err();
        assert!(matches!(err, ttk_uncertain::Error::Source(_)), "{err:?}");
    }
}
