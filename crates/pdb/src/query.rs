//! Executing top-k distribution queries against probabilistic tables.
//!
//! This is the layer that corresponds to the paper's SQL scenario:
//!
//! ```sql
//! SELECT segment_id, speed_limit / (length / delay) AS congestion_score
//! FROM area
//! ORDER BY congestion_score DESC
//! LIMIT k
//! ```
//!
//! A [`DistributionQuery`] carries the scoring expression (as text) plus the
//! knobs of the underlying [`TopkQuery`]; [`run_distribution_query`] scores
//! the rows, assembles the uncertain table, runs the core pipeline and maps
//! the answers back to row indexes of the probabilistic table.

use ttk_core::{Dataset, QueryAnswer, Session, TopkQuery};
use ttk_uncertain::TopkVector;

use crate::error::Result;
use crate::expr::Expr;
use crate::parser::parse_expression;
use crate::table::PTable;

/// A top-k distribution query over a probabilistic table.
#[derive(Debug, Clone)]
pub struct DistributionQuery {
    /// The scoring expression (`ORDER BY <expr> DESC`).
    pub score: String,
    /// The top-k parameters (k, c, pτ, max lines, algorithm, …).
    pub topk: TopkQuery,
}

impl DistributionQuery {
    /// Creates a query with default top-k parameters.
    pub fn new(score: impl Into<String>, k: usize) -> Self {
        DistributionQuery {
            score: score.into(),
            topk: TopkQuery::new(k),
        }
    }

    /// Replaces the top-k parameters.
    pub fn with_topk(mut self, topk: TopkQuery) -> Self {
        self.topk = topk;
        self
    }
}

/// A query result, answering both at the level of the uncertain-table
/// machinery (score distribution, typical vectors, U-Topk) and at the level
/// of the original rows.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// The scoring expression after parsing (normalised form).
    pub score_expression: Expr,
    /// The full answer from the core engine.
    pub answer: QueryAnswer,
}

impl QueryResult {
    /// Maps a top-k vector back to row indexes of the probabilistic table
    /// (tuple ids are row indexes by construction).
    pub fn rows_of(&self, vector: &TopkVector) -> Vec<usize> {
        vector.ids().iter().map(|id| id.raw() as usize).collect()
    }

    /// Row indexes of every typical vector, in ascending typical-score order.
    pub fn typical_rows(&self) -> Vec<Vec<usize>> {
        self.answer
            .typical
            .answers
            .iter()
            .filter_map(|a| a.vector.as_ref())
            .map(|v| self.rows_of(v))
            .collect()
    }

    /// Row indexes of the U-Topk vector, when it was computed.
    pub fn u_topk_rows(&self) -> Option<Vec<usize>> {
        self.answer.u_topk.as_ref().map(|u| self.rows_of(&u.vector))
    }
}

/// Parses the scoring expression, scores the rows and runs the complete
/// typical top-k pipeline.
///
/// # Errors
///
/// Returns parse errors, expression evaluation errors, data-model validation
/// errors and core algorithm errors.
pub fn run_distribution_query(table: &PTable, query: &DistributionQuery) -> Result<QueryResult> {
    let score_expression = parse_expression(&query.score)?;
    let uncertain = table.to_uncertain_table(&score_expression)?;
    let dataset = Dataset::table(uncertain).with_label(table.name().to_string());
    let answer = Session::new().execute(&dataset, &query.topk)?;
    Ok(QueryResult {
        score_expression,
        answer,
    })
}

/// Streaming variant of [`run_distribution_query`]: the rows are scored into
/// a rank-ordered tuple source and pulled through the Theorem-2 scan gate, so
/// only the scanned prefix is materialized as an uncertain table for the
/// distribution. When the U-Topk comparison answer is requested the rest of
/// the stream is drained for it (U-Topk has no probability threshold);
/// disable it via the query's `with_u_topk(false)` to keep the scan bounded.
///
/// # Errors
///
/// As [`run_distribution_query`].
pub fn run_distribution_query_streamed(
    table: &PTable,
    query: &DistributionQuery,
) -> Result<QueryResult> {
    let score_expression = parse_expression(&query.score)?;
    let source = table.to_tuple_source(&score_expression)?;
    let dataset = Dataset::stream(source).with_label(table.name().to_string());
    let answer = Session::new().execute(&dataset, &query.topk)?;
    Ok(QueryResult {
        score_expression,
        answer,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::value::DataType;

    /// The soldier table of Figure 1 expressed as a probabilistic relation.
    fn soldier_ptable() -> PTable {
        let schema = Schema::default()
            .with("soldier_id", DataType::Integer)
            .with("medical_score", DataType::Float);
        let mut t = PTable::new("soldiers", schema);
        let rows: [(i64, f64, f64, Option<&str>); 7] = [
            (1, 49.0, 0.4, None),
            (2, 60.0, 0.4, Some("soldier-2")),
            (3, 110.0, 0.4, Some("soldier-3")),
            (2, 80.0, 0.3, Some("soldier-2")),
            (4, 56.0, 1.0, None),
            (3, 58.0, 0.5, Some("soldier-3")),
            (2, 125.0, 0.3, Some("soldier-2")),
        ];
        for (soldier, score, p, group) in rows {
            t.insert(vec![soldier.into(), score.into()], p, group)
                .unwrap();
        }
        t
    }

    #[test]
    fn end_to_end_soldier_query_matches_the_paper() {
        let table = soldier_ptable();
        let query = DistributionQuery::new("medical_score", 2)
            .with_topk(TopkQuery::new(2).with_p_tau(1e-9).with_max_lines(0));
        let result = run_distribution_query(&table, &query).unwrap();
        assert!((result.answer.expected_score() - 164.1).abs() < 0.05);
        assert_eq!(result.answer.typical.scores(), vec![118.0, 183.0, 235.0]);
        // Row indexes: row 1 is the T2 reading, row 5 is the T6 reading.
        assert_eq!(result.u_topk_rows().unwrap(), vec![1, 5]);
        let typical_rows = result.typical_rows();
        assert_eq!(typical_rows.len(), 3);
        assert_eq!(typical_rows[2], vec![6, 2]); // <T7, T3> = rows 6 and 2
    }

    #[test]
    fn expressions_can_combine_columns() {
        let schema = Schema::default()
            .with("base", DataType::Float)
            .with("penalty", DataType::Float);
        let mut t = PTable::new("scores", schema);
        t.insert(vec![10.0.into(), 1.0.into()], 0.5, None).unwrap();
        t.insert(vec![8.0.into(), 0.0.into()], 0.9, None).unwrap();
        t.insert(vec![12.0.into(), 5.0.into()], 0.7, None).unwrap();
        let query = DistributionQuery::new("base - penalty", 1)
            .with_topk(TopkQuery::new(1).with_p_tau(1e-9).with_max_lines(0));
        let result = run_distribution_query(&t, &query).unwrap();
        // Scores: 9, 8, 7 → the mode of the top-1 distribution is 9 (p=0.5).
        let mode = result.answer.distribution.mode().unwrap();
        assert!((mode.score - 9.0).abs() < 1e-9);
        assert!((mode.probability - 0.5).abs() < 1e-9);
    }

    #[test]
    fn streamed_query_matches_the_materialized_route() {
        let table = soldier_ptable();
        let query = DistributionQuery::new("medical_score", 2)
            .with_topk(TopkQuery::new(2).with_p_tau(1e-9).with_max_lines(0));
        let materialized = run_distribution_query(&table, &query).unwrap();
        let streamed = run_distribution_query_streamed(&table, &query).unwrap();
        assert_eq!(
            materialized.answer.distribution,
            streamed.answer.distribution
        );
        assert_eq!(
            materialized.answer.typical.scores(),
            streamed.answer.typical.scores()
        );
        // The toy table is scanned in full, so even the prefix-based U-Topk
        // search sees the same input.
        assert_eq!(materialized.u_topk_rows(), streamed.u_topk_rows());
    }

    #[test]
    fn parse_errors_surface() {
        let table = soldier_ptable();
        let query = DistributionQuery::new("medical_score +", 2);
        assert!(run_distribution_query(&table, &query).is_err());
        let query = DistributionQuery::new("unknown_column", 2);
        assert!(run_distribution_query(&table, &query).is_err());
    }
}
