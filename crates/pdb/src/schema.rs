//! Table schemas.

use crate::error::{PdbError, Result};
use crate::value::{DataType, Value};

/// One column of a schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Column name (case sensitive).
    pub name: String,
    /// Declared data type.
    pub data_type: DataType,
}

impl Column {
    /// Creates a column.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        Column {
            name: name.into(),
            data_type,
        }
    }
}

/// An ordered list of named, typed columns.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    columns: Vec<Column>,
}

impl Schema {
    /// Creates a schema from columns.
    ///
    /// # Errors
    ///
    /// Returns [`PdbError::SchemaMismatch`] when two columns share a name.
    pub fn new(columns: Vec<Column>) -> Result<Self> {
        for (i, c) in columns.iter().enumerate() {
            if columns[..i].iter().any(|o| o.name == c.name) {
                return Err(PdbError::SchemaMismatch(format!(
                    "duplicate column name `{}`",
                    c.name
                )));
            }
        }
        Ok(Schema { columns })
    }

    /// Builder-style helper: `Schema::default().with("delay", DataType::Float)`.
    pub fn with(mut self, name: impl Into<String>, data_type: DataType) -> Self {
        self.columns.push(Column::new(name, data_type));
        self
    }

    /// The columns in declaration order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// True when the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Index of the column with the given name.
    ///
    /// # Errors
    ///
    /// Returns [`PdbError::UnknownColumn`] when the name is not present.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        self.columns
            .iter()
            .position(|c| c.name == name)
            .ok_or_else(|| PdbError::UnknownColumn(name.to_string()))
    }

    /// Validates and coerces a row of values against the schema.
    ///
    /// # Errors
    ///
    /// Returns [`PdbError::SchemaMismatch`] for arity errors and
    /// [`PdbError::TypeMismatch`] for values that cannot be coerced.
    pub fn check_row(&self, values: &[Value]) -> Result<Vec<Value>> {
        if values.len() != self.columns.len() {
            return Err(PdbError::SchemaMismatch(format!(
                "expected {} values, got {}",
                self.columns.len(),
                values.len()
            )));
        }
        values
            .iter()
            .zip(&self.columns)
            .map(|(v, c)| v.coerce(c.data_type))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::default()
            .with("segment_id", DataType::Integer)
            .with("length", DataType::Float)
            .with("name", DataType::Text)
    }

    #[test]
    fn lookup_and_len() {
        let s = schema();
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert_eq!(s.index_of("length").unwrap(), 1);
        assert!(matches!(
            s.index_of("missing"),
            Err(PdbError::UnknownColumn(_))
        ));
        assert_eq!(s.columns()[0].name, "segment_id");
    }

    #[test]
    fn duplicate_columns_rejected() {
        let r = Schema::new(vec![
            Column::new("a", DataType::Integer),
            Column::new("a", DataType::Float),
        ]);
        assert!(matches!(r, Err(PdbError::SchemaMismatch(_))));
    }

    #[test]
    fn row_checking_coerces_and_validates() {
        let s = schema();
        let row = s
            .check_row(&[
                Value::Integer(1),
                Value::Integer(120),
                Value::from("elm st"),
            ])
            .unwrap();
        assert_eq!(row[1], Value::Float(120.0));
        assert!(s.check_row(&[Value::Integer(1)]).is_err());
        assert!(s
            .check_row(&[Value::from("x"), Value::Float(1.0), Value::from("y")])
            .is_err());
    }
}
