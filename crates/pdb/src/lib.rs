//! # ttk-pdb — a minimal probabilistic database layer
//!
//! The paper frames its proposal as a database feature: an application issues
//! an SQL top-k query over an uncertain relation and receives, instead of a
//! single answer vector, the score distribution of top-k vectors plus a set
//! of typical answers. This crate supplies the thin relational substrate that
//! makes the examples, the CLI and the benchmark harness look like that
//! scenario end to end:
//!
//! * [`value`] / [`schema`] — typed values and table schemas;
//! * [`table`] — probabilistic tables: rows with membership probabilities and
//!   x-tuple (mutual-exclusion) group keys;
//! * [`expr`] / [`parser`] — the scoring-expression language used in
//!   `ORDER BY <expr> DESC LIMIT k`;
//! * [`csv`] — CSV import/export with probability and group columns,
//!   including the external-sort [`SpillIndex`] for out-of-core scans;
//! * [`dataset`] — [`CsvDataset`]: CSV relations as replayable `Dataset`s
//!   for the unified `Session` API of `ttk-core`, with cached scoring passes
//!   and spill-index reuse;
//! * [`query`] — execution of [`DistributionQuery`]s through the `ttk-core`
//!   pipeline, with results mapped back to rows;
//! * [`catalog`] — a trivial named-table catalog.
//!
//! ```
//! use ttk_pdb::{run_distribution_query, table_from_csv, CsvOptions, DistributionQuery};
//!
//! let csv = "\
//! segment_id,speed_limit,length,delay,probability,group_key
//! 1,50,1000,120,0.6,seg-1
//! 1,50,1000,300,0.4,seg-1
//! 2,30,500,90,1.0,seg-2
//! 3,60,900,240,1.0,seg-3
//! ";
//! let area = table_from_csv("area", csv, &CsvOptions::default())?;
//! let query = DistributionQuery::new("speed_limit / (length / delay)", 2);
//! let result = run_distribution_query(&area, &query)?;
//! assert!(result.answer.distribution.total_probability() > 0.99);
//! # Ok::<(), ttk_pdb::PdbError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod catalog;
pub mod csv;
pub mod dataset;
pub mod error;
pub mod expr;
pub mod parser;
pub mod query;
pub mod schema;
pub mod table;
pub mod value;

pub use catalog::Database;
pub use csv::{
    count_csv_records, shard_sources_from_csv, shard_sources_from_csv_with, stable_group_key,
    table_from_csv, table_to_csv, tuple_source_from_csv, tuple_source_from_csv_path,
    tuple_source_from_csv_spilled, CsvOptions, ShardImportOptions, SpillIndex, SpillOptions,
    SpilledSource,
};
pub use dataset::CsvDataset;
pub use error::{PdbError, Result};
pub use expr::{BinaryOp, Expr};
pub use parser::parse_expression;
pub use query::{
    run_distribution_query, run_distribution_query_streamed, DistributionQuery, QueryResult,
};
pub use schema::{Column, Schema};
pub use table::{PTable, UncertainRow};
pub use value::{DataType, Value};
