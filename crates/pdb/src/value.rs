//! Values and data types stored in probabilistic tables.

use std::fmt;

use crate::error::{PdbError, Result};

/// The data types supported by the storage layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataType {
    /// 64-bit signed integer.
    Integer,
    /// 64-bit floating point number.
    Float,
    /// UTF-8 string.
    Text,
    /// Boolean.
    Boolean,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Integer => "INTEGER",
            DataType::Float => "FLOAT",
            DataType::Text => "TEXT",
            DataType::Boolean => "BOOLEAN",
        };
        f.write_str(s)
    }
}

/// A single stored value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// An integer value.
    Integer(i64),
    /// A floating point value.
    Float(f64),
    /// A text value.
    Text(String),
    /// A boolean value.
    Boolean(bool),
    /// An SQL-style NULL.
    Null,
}

impl Value {
    /// The data type of the value, or `None` for NULL.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Integer(_) => Some(DataType::Integer),
            Value::Float(_) => Some(DataType::Float),
            Value::Text(_) => Some(DataType::Text),
            Value::Boolean(_) => Some(DataType::Boolean),
            Value::Null => None,
        }
    }

    /// True for [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Interprets the value as a number (integers widen to floats).
    ///
    /// # Errors
    ///
    /// Returns a [`PdbError::TypeMismatch`] for text, boolean or NULL values.
    pub fn as_number(&self, context: &str) -> Result<f64> {
        match self {
            Value::Integer(i) => Ok(*i as f64),
            Value::Float(f) => Ok(*f),
            other => Err(PdbError::TypeMismatch {
                expected: "a number".into(),
                found: format!("{other}"),
                context: context.to_string(),
            }),
        }
    }

    /// Parses a textual field into the "widest-fitting" value: integers,
    /// then floats, then booleans, then text; an empty string becomes NULL.
    pub fn infer_from_str(s: &str) -> Value {
        let trimmed = s.trim();
        if trimmed.is_empty() {
            return Value::Null;
        }
        if let Ok(i) = trimmed.parse::<i64>() {
            return Value::Integer(i);
        }
        if let Ok(f) = trimmed.parse::<f64>() {
            return Value::Float(f);
        }
        match trimmed.to_ascii_lowercase().as_str() {
            "true" => Value::Boolean(true),
            "false" => Value::Boolean(false),
            _ => Value::Text(trimmed.to_string()),
        }
    }

    /// Coerces the value to the given type when a lossless conversion exists.
    pub fn coerce(&self, to: DataType) -> Result<Value> {
        match (self, to) {
            (Value::Null, _) => Ok(Value::Null),
            (Value::Integer(i), DataType::Integer) => Ok(Value::Integer(*i)),
            (Value::Integer(i), DataType::Float) => Ok(Value::Float(*i as f64)),
            (Value::Integer(i), DataType::Text) => Ok(Value::Text(i.to_string())),
            (Value::Float(f), DataType::Float) => Ok(Value::Float(*f)),
            (Value::Float(f), DataType::Text) => Ok(Value::Text(f.to_string())),
            (Value::Text(s), DataType::Text) => Ok(Value::Text(s.clone())),
            (Value::Boolean(b), DataType::Boolean) => Ok(Value::Boolean(*b)),
            (Value::Boolean(b), DataType::Text) => Ok(Value::Text(b.to_string())),
            (Value::Text(s), t) => {
                let inferred = Value::infer_from_str(s);
                if matches!(inferred, Value::Text(_)) {
                    Err(PdbError::TypeMismatch {
                        expected: t.to_string(),
                        found: format!("TEXT `{s}`"),
                        context: "coercion".into(),
                    })
                } else {
                    inferred.coerce(t)
                }
            }
            (v, t) => Err(PdbError::TypeMismatch {
                expected: t.to_string(),
                found: format!("{v}"),
                context: "coercion".into(),
            }),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Integer(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Text(s) => write!(f, "{s}"),
            Value::Boolean(b) => write!(f, "{b}"),
            Value::Null => write!(f, "NULL"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Integer(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Boolean(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inference_from_strings() {
        assert_eq!(Value::infer_from_str("42"), Value::Integer(42));
        assert_eq!(Value::infer_from_str("4.5"), Value::Float(4.5));
        assert_eq!(Value::infer_from_str("true"), Value::Boolean(true));
        assert_eq!(Value::infer_from_str("  "), Value::Null);
        assert_eq!(
            Value::infer_from_str("main st"),
            Value::Text("main st".into())
        );
    }

    #[test]
    fn numbers_widen_and_others_fail() {
        assert_eq!(Value::Integer(3).as_number("test").unwrap(), 3.0);
        assert_eq!(Value::Float(2.5).as_number("test").unwrap(), 2.5);
        assert!(Value::Text("x".into()).as_number("test").is_err());
        assert!(Value::Null.as_number("test").is_err());
    }

    #[test]
    fn coercion_rules() {
        assert_eq!(
            Value::Integer(3).coerce(DataType::Float).unwrap(),
            Value::Float(3.0)
        );
        assert_eq!(
            Value::Text("7".into()).coerce(DataType::Integer).unwrap(),
            Value::Integer(7)
        );
        assert!(Value::Text("abc".into()).coerce(DataType::Float).is_err());
        assert_eq!(Value::Null.coerce(DataType::Float).unwrap(), Value::Null);
        assert!(Value::Boolean(true).coerce(DataType::Integer).is_err());
    }

    #[test]
    fn display_and_types() {
        assert_eq!(Value::from(3i64).to_string(), "3");
        assert_eq!(Value::from("x").to_string(), "x");
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::from(true).data_type(), Some(DataType::Boolean));
        assert_eq!(Value::Null.data_type(), None);
        assert!(Value::Null.is_null());
        assert_eq!(DataType::Float.to_string(), "FLOAT");
    }
}
