//! Error type of the probabilistic-database layer.

use std::fmt;

/// Errors raised while defining schemas, evaluating expressions, parsing CSV
/// input or executing queries.
#[derive(Debug, Clone, PartialEq)]
pub enum PdbError {
    /// A column name was not found in the schema.
    UnknownColumn(String),
    /// A value had the wrong type for the requested operation.
    TypeMismatch {
        /// What the operation expected.
        expected: String,
        /// What it found.
        found: String,
        /// Where the mismatch occurred.
        context: String,
    },
    /// A scoring expression could not be parsed.
    ParseError {
        /// Byte offset of the error in the input.
        position: usize,
        /// Description of what went wrong.
        message: String,
    },
    /// Division by zero (or by a value indistinguishable from zero) during
    /// expression evaluation.
    DivisionByZero,
    /// A row did not match the table schema.
    SchemaMismatch(String),
    /// A malformed CSV input.
    CsvError {
        /// 1-based line number.
        line: usize,
        /// Description of what went wrong.
        message: String,
    },
    /// A table name was not found in the catalog.
    UnknownTable(String),
    /// A table with the same name already exists in the catalog.
    DuplicateTable(String),
    /// The requested query was invalid (empty table, bad parameters, …).
    InvalidQuery(String),
    /// An I/O failure while reading input or spilling external-sort runs.
    Io(String),
    /// An error bubbled up from the underlying top-k machinery.
    Core(ttk_uncertain::Error),
}

impl fmt::Display for PdbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PdbError::UnknownColumn(name) => write!(f, "unknown column `{name}`"),
            PdbError::TypeMismatch {
                expected,
                found,
                context,
            } => write!(
                f,
                "type mismatch in {context}: expected {expected}, found {found}"
            ),
            PdbError::ParseError { position, message } => {
                write!(f, "parse error at byte {position}: {message}")
            }
            PdbError::DivisionByZero => write!(f, "division by zero"),
            PdbError::SchemaMismatch(msg) => write!(f, "row does not match schema: {msg}"),
            PdbError::CsvError { line, message } => {
                write!(f, "CSV error on line {line}: {message}")
            }
            PdbError::UnknownTable(name) => write!(f, "unknown table `{name}`"),
            PdbError::DuplicateTable(name) => write!(f, "table `{name}` already exists"),
            PdbError::InvalidQuery(msg) => write!(f, "invalid query: {msg}"),
            PdbError::Io(msg) => write!(f, "I/O error: {msg}"),
            PdbError::Core(e) => write!(f, "top-k engine error: {e}"),
        }
    }
}

impl std::error::Error for PdbError {}

impl From<ttk_uncertain::Error> for PdbError {
    fn from(e: ttk_uncertain::Error) -> Self {
        PdbError::Core(e)
    }
}

impl From<std::io::Error> for PdbError {
    fn from(e: std::io::Error) -> Self {
        PdbError::Io(e.to_string())
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, PdbError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(PdbError::UnknownColumn("delay".into())
            .to_string()
            .contains("delay"));
        assert!(PdbError::CsvError {
            line: 4,
            message: "too few fields".into()
        }
        .to_string()
        .contains("line 4"));
        let wrapped: PdbError = ttk_uncertain::Error::InvalidParameter("k".into()).into();
        assert!(wrapped.to_string().contains("top-k engine"));
    }
}
