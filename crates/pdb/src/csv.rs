//! Minimal CSV import/export for probabilistic tables.
//!
//! The format is conventional RFC-4180-style CSV with a header row. Two
//! designated columns carry the uncertainty metadata:
//!
//! * the *probability column* (required) holds the membership probability;
//! * the *group column* (optional) holds the x-tuple key — rows sharing a
//!   non-empty key are mutually exclusive.
//!
//! Both metadata columns are stripped from the relational schema; all other
//! columns are type-inferred (integer → float → boolean → text).

use std::collections::HashMap;
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use ttk_uncertain::{
    GroupKey, MergeSource, PrefetchPolicy, SourceTuple, TupleBlock, TupleFeed, TupleSource,
    UncertainTuple, VecSource,
};

use crate::error::{PdbError, Result};
use crate::expr::Expr;
use crate::schema::{Column, Schema};
use crate::table::PTable;
use crate::value::{DataType, Value};

/// Options controlling CSV import.
#[derive(Debug, Clone)]
pub struct CsvOptions {
    /// Name of the column holding membership probabilities.
    pub probability_column: String,
    /// Name of the column holding x-tuple group keys, if any.
    pub group_column: Option<String>,
}

impl Default for CsvOptions {
    fn default() -> Self {
        CsvOptions {
            probability_column: "probability".to_string(),
            group_column: Some("group_key".to_string()),
        }
    }
}

/// Splits one CSV record, honouring double-quoted fields with embedded commas
/// and doubled quotes.
fn split_record(line: &str, line_no: usize) -> Result<Vec<String>> {
    let mut fields = Vec::new();
    let mut field = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        match c {
            '"' if in_quotes => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    field.push('"');
                } else {
                    in_quotes = false;
                }
            }
            '"' if field.is_empty() => in_quotes = true,
            '"' => {
                return Err(PdbError::CsvError {
                    line: line_no,
                    message: "unexpected quote in unquoted field".into(),
                })
            }
            ',' if !in_quotes => {
                fields.push(std::mem::take(&mut field));
            }
            c => field.push(c),
        }
    }
    if in_quotes {
        return Err(PdbError::CsvError {
            line: line_no,
            message: "unterminated quoted field".into(),
        });
    }
    fields.push(field);
    Ok(fields)
}

/// The structural layout of a CSV file: header names plus the positions of
/// the metadata columns.
struct CsvLayout {
    header: Vec<String>,
    prob_idx: usize,
    group_idx: Option<usize>,
    data_columns: Vec<usize>,
}

/// Parses the header row and locates the probability/group columns.
fn parse_layout(text: &str, options: &CsvOptions) -> Result<CsvLayout> {
    let header_line = text
        .lines()
        .find(|l| !l.trim().is_empty())
        .ok_or(PdbError::CsvError {
            line: 1,
            message: "missing header row".into(),
        })?;
    layout_from_header(header_line, options)
}

/// Builds a layout from an already-extracted header line.
fn layout_from_header(header_line: &str, options: &CsvOptions) -> Result<CsvLayout> {
    let header = split_record(header_line, 1)?;
    let prob_idx = header
        .iter()
        .position(|h| h.trim() == options.probability_column)
        .ok_or_else(|| PdbError::CsvError {
            line: 1,
            message: format!(
                "probability column `{}` not found in header",
                options.probability_column
            ),
        })?;
    let group_idx = match &options.group_column {
        Some(name) => header.iter().position(|h| h.trim() == *name),
        None => None,
    };
    let data_columns: Vec<usize> = (0..header.len())
        .filter(|&i| i != prob_idx && Some(i) != group_idx)
        .collect();
    Ok(CsvLayout {
        header,
        prob_idx,
        group_idx,
        data_columns,
    })
}

/// Parses the data records of a CSV text once (header skipped, blank lines
/// ignored), validating field counts against the layout. Returned as
/// `(line number, fields)` pairs so both the type-inference and the loading
/// pass run over the same parse. Thin collecting wrapper over
/// [`for_each_record`], which the out-of-core paths stream through instead.
fn parse_records(text: &str, layout: &CsvLayout) -> Result<Vec<(usize, Vec<String>)>> {
    let mut records = Vec::new();
    for_each_record(text.as_bytes(), layout, |line_no, record| {
        records.push((line_no, record));
        Ok(())
    })?;
    Ok(records)
}

/// Widens a column type to accommodate one more inferred value.
fn merge_type(ty: DataType, value: &Value) -> DataType {
    match value {
        Value::Integer(_) | Value::Null => ty,
        Value::Float(_) => {
            if ty == DataType::Integer {
                DataType::Float
            } else {
                ty
            }
        }
        Value::Boolean(_) => {
            if ty == DataType::Integer {
                DataType::Boolean
            } else if ty != DataType::Boolean {
                DataType::Text
            } else {
                ty
            }
        }
        Value::Text(_) => DataType::Text,
    }
}

/// Infers the relational schema of the data columns over the parsed records.
fn infer_schema(records: &[(usize, Vec<String>)], layout: &CsvLayout) -> Result<Schema> {
    let mut types = vec![DataType::Integer; layout.data_columns.len()];
    for (_, record) in records {
        for (slot, &col) in layout.data_columns.iter().enumerate() {
            types[slot] = merge_type(types[slot], &Value::infer_from_str(&record[col]));
        }
    }
    schema_from_types(layout, &types)
}

/// Assembles the schema of the data columns from their inferred types.
fn schema_from_types(layout: &CsvLayout, types: &[DataType]) -> Result<Schema> {
    let columns = layout
        .data_columns
        .iter()
        .zip(types)
        .map(|(&col, &ty)| Column::new(layout.header[col].trim(), ty))
        .collect();
    Schema::new(columns)
}

fn parse_probability(record: &[String], layout: &CsvLayout, line_no: usize) -> Result<f64> {
    let probability: f64 =
        record[layout.prob_idx]
            .trim()
            .parse()
            .map_err(|_| PdbError::CsvError {
                line: line_no,
                message: format!("invalid probability `{}`", record[layout.prob_idx]),
            })?;
    // A NaN would poison every probability sum downstream; reject it here
    // where the row and column can still be named.
    if !probability.is_finite() {
        return Err(PdbError::CsvError {
            line: line_no,
            message: format!(
                "non-finite probability `{}` in column `{}`",
                record[layout.prob_idx].trim(),
                layout.header[layout.prob_idx].trim()
            ),
        });
    }
    Ok(probability)
}

fn group_key<'a>(record: &'a [String], layout: &CsvLayout) -> Option<&'a str> {
    layout.group_idx.and_then(|g| {
        let key = record[g].trim();
        (!key.is_empty()).then_some(key)
    })
}

/// Parses CSV text into a probabilistic table.
///
/// # Errors
///
/// Returns [`PdbError::CsvError`] for malformed input (missing header,
/// missing probability column, ragged rows, unparsable probabilities) and
/// propagates schema/probability validation errors from [`PTable::insert`].
pub fn table_from_csv(name: &str, text: &str, options: &CsvOptions) -> Result<PTable> {
    let layout = parse_layout(text, options)?;
    let records = parse_records(text, &layout)?;
    let schema = infer_schema(&records, &layout)?;
    let mut table = PTable::new(name, schema);
    for (line_no, record) in &records {
        let probability = parse_probability(record, &layout, *line_no)?;
        let values: Vec<Value> = layout
            .data_columns
            .iter()
            .map(|&c| Value::infer_from_str(&record[c]))
            .collect();
        table.insert(values, probability, group_key(record, &layout))?;
    }
    Ok(table)
}

/// Parses CSV text straight into a rank-ordered
/// [`TupleSource`], scoring each row with the
/// given expression as it is read.
///
/// Unlike [`table_from_csv`] + [`PTable::to_tuple_source`], no relational
/// table is built: after one parsing pass only the `(row index, score,
/// probability, group)` quadruple of each record is retained, so the
/// resulting source's footprint is independent of the relation's width.
/// Tuple ids are 0-based data-record indexes, matching the row indexes a
/// [`table_from_csv`] import would assign.
///
/// # Errors
///
/// Returns [`PdbError::CsvError`] for malformed input, expression
/// validation/evaluation errors, and tuple validation errors.
pub fn tuple_source_from_csv(text: &str, options: &CsvOptions, score: &Expr) -> Result<VecSource> {
    // Exactly the 1-shard case of the sharded import: one parsing pass, one
    // fresh id space and group-key namespace.
    let mut shards = shard_sources_from_csv(&[text], options, score)?;
    Ok(shards.pop().expect("one shard per input text"))
}

/// Options shaping how the shards of one partitioned relation are scored
/// when the shard files are imported by **independent processes** (the
/// `ttk serve-shard` scenario): each process must place its rows in the
/// shared tuple-id space and derive group keys every other process agrees
/// on without any shared state.
#[derive(Debug, Clone, Default)]
pub struct ShardImportOptions {
    /// The tuple id assigned to the first data record; ids count up from
    /// here. A server handed shard `i` of a partition passes the total row
    /// count of shards `0..i` so the global id space matches a single-process
    /// import of the concatenation.
    pub first_tuple_id: u64,
    /// Derive each group key by **hashing the group label** (64-bit FNV-1a)
    /// instead of first-sight sequential numbering. Hashed keys are stable
    /// across processes: two servers scoring the same label emit the same
    /// key, so an ME group split across remotely-served shards is reunified
    /// by the merge without any coordination.
    pub hashed_group_keys: bool,
}

impl From<&ttk_uncertain::ShardAssignment> for ShardImportOptions {
    /// Import options matching a coordinator lease (or a server-advertised
    /// hello assignment): the leased id base, with hashed group keys — the
    /// only key discipline independently-scoring processes can agree on.
    fn from(lease: &ttk_uncertain::ShardAssignment) -> Self {
        ShardImportOptions {
            first_tuple_id: lease.id_base,
            hashed_group_keys: true,
        }
    }
}

/// 64-bit FNV-1a over a group label — the stable cross-process group key of
/// [`ShardImportOptions::hashed_group_keys`]. Public so clients staging live
/// appends (`ttk append --row ID:SCORE:PROB:GROUP`) derive the same group
/// keys a CSV import of the same labels would.
pub fn stable_group_key(label: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in label.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The cross-record state of a scoring pass: the group-key namespace and the
/// tuple-id counter (both of which persist **across shard files**, giving
/// every shard of a partition one id space and one ME-group namespace), plus
/// a row-value scratch buffer reused across records so the bulk-import hot
/// path does not allocate per row.
struct ScoreState {
    key_of_group: HashMap<String, u64>,
    hashed_keys: bool,
    next_id: u64,
    row_values: Vec<Value>,
}

impl ScoreState {
    fn with_import(import: &ShardImportOptions) -> Self {
        ScoreState {
            key_of_group: HashMap::new(),
            hashed_keys: import.hashed_group_keys,
            next_id: import.first_tuple_id,
            row_values: Vec::new(),
        }
    }

    /// Scores one parsed record into a [`SourceTuple`], assigning the next
    /// tuple id and the record's group key from the shared namespace.
    fn score_record(
        &mut self,
        record: &[String],
        layout: &CsvLayout,
        schema: &Schema,
        score: &Expr,
        line_no: usize,
    ) -> Result<SourceTuple> {
        let probability = parse_probability(record, layout, line_no)?;
        self.row_values.clear();
        self.row_values.extend(
            layout
                .data_columns
                .iter()
                .map(|&c| Value::infer_from_str(&record[c])),
        );
        let score_value = score.evaluate(schema, &self.row_values)?;
        // A NaN (or infinite) score would silently violate the total rank
        // order the loser-tree merge and the scan gate depend on — reject it
        // at parse time, naming the row and the columns that produced it.
        if !score_value.is_finite() {
            return Err(PdbError::CsvError {
                line: line_no,
                message: format!(
                    "non-finite score `{score_value}` evaluated from the scoring expression \
                     over column(s) {:?}",
                    score.referenced_columns()
                ),
            });
        }
        let tuple =
            UncertainTuple::new(self.next_id, score_value, probability).map_err(PdbError::Core)?;
        self.next_id += 1;
        Ok(match group_key(record, layout) {
            Some(g) if self.hashed_keys => SourceTuple::grouped(tuple, stable_group_key(g)),
            Some(g) => {
                let next_key = self.key_of_group.len() as u64;
                let key = *self.key_of_group.entry(g.to_string()).or_insert(next_key);
                SourceTuple::grouped(tuple, key)
            }
            None => SourceTuple::independent(tuple),
        })
    }
}

/// Parses several CSV texts — the **shards of one partitioned relation** —
/// into one rank-ordered [`VecSource`] per shard.
///
/// The shards share a tuple-id space (ids keep counting across shards in the
/// order given) and a group-key namespace (equal group-column strings in
/// different shards name the **same** mutual-exclusion group), so merging the
/// returned sources with [`MergeSource::new`] behaves exactly like importing
/// the concatenation of the shards through [`tuple_source_from_csv`]. Each
/// shard may carry its own column order; every shard's schema must satisfy
/// the scoring expression.
///
/// # Errors
///
/// As [`tuple_source_from_csv`], per shard.
pub fn shard_sources_from_csv(
    texts: &[&str],
    options: &CsvOptions,
    score: &Expr,
) -> Result<Vec<VecSource>> {
    shard_sources_from_csv_with(texts, options, score, &ShardImportOptions::default())
}

/// [`shard_sources_from_csv`] with explicit [`ShardImportOptions`] — the
/// entry point for processes importing **some** shards of a relation whose
/// other shards live elsewhere (`ttk serve-shard`, `--shard` mixed with
/// `--remote-shard`): `first_tuple_id` places the rows in the shared id
/// space and `hashed_group_keys` derives group keys every process agrees on.
///
/// # Errors
///
/// As [`tuple_source_from_csv`], per shard.
pub fn shard_sources_from_csv_with(
    texts: &[&str],
    options: &CsvOptions,
    score: &Expr,
    import: &ShardImportOptions,
) -> Result<Vec<VecSource>> {
    let mut state = ScoreState::with_import(import);
    let mut shards = Vec::with_capacity(texts.len());
    for text in texts {
        let layout = parse_layout(text, options)?;
        let records = parse_records(text, &layout)?;
        let schema = infer_schema(&records, &layout)?;
        score.validate(&schema)?;
        let mut tuples = Vec::with_capacity(records.len());
        for (line_no, record) in &records {
            tuples.push(state.score_record(record, &layout, &schema, score, *line_no)?);
        }
        shards.push(VecSource::new(tuples));
    }
    Ok(shards)
}

/// Options of the external-sort (out-of-core) CSV scan.
#[derive(Debug, Clone)]
pub struct SpillOptions {
    /// Maximum number of scored tuples buffered in memory at once. When the
    /// buffer fills, it is sorted into rank order and spilled to a temporary
    /// run file; the runs are then replayed as shard streams under a k-way
    /// merge. Memory use is `O(run_buffer_tuples + runs)`, independent of the
    /// relation size.
    pub run_buffer_tuples: usize,
    /// Directory for run files; defaults to [`std::env::temp_dir`].
    pub temp_dir: Option<PathBuf>,
    /// Upper bound on the number of run files the final merge fans in. When
    /// an import spills more runs than this (a tiny buffer over a huge
    /// relation), intermediate merge passes fold batches of `max_fan_in`
    /// runs into larger runs first, so the per-tuple cost of the final merge
    /// stays `O(log max_fan_in)` and its open-file count bounded. Clamped to
    /// at least 2.
    pub max_fan_in: usize,
}

impl Default for SpillOptions {
    fn default() -> Self {
        SpillOptions {
            run_buffer_tuples: 64 * 1024,
            temp_dir: None,
            max_fan_in: 64,
        }
    }
}

impl SpillOptions {
    /// A spill configuration buffering at most `run_buffer_tuples` tuples.
    pub fn with_run_buffer(run_buffer_tuples: usize) -> Self {
        SpillOptions {
            run_buffer_tuples: run_buffer_tuples.max(1),
            ..SpillOptions::default()
        }
    }

    /// Sets the final-merge fan-in bound (clamped to at least 2).
    pub fn with_max_fan_in(mut self, max_fan_in: usize) -> Self {
        self.max_fan_in = max_fan_in.max(2);
        self
    }
}

/// Distinguishes run files of concurrent imports within one process.
static SPILL_SEQUENCE: AtomicU64 = AtomicU64::new(0);

/// Owns the temporary run files of one spilled import; removes them on drop
/// (including the error paths of a partially-completed import).
#[derive(Debug, Default)]
struct RunFiles {
    paths: Vec<PathBuf>,
    dir: PathBuf,
}

/// Encodes one tuple as a run-file line. Scores and probabilities are stored
/// as raw IEEE-754 bits so the replayed run is bit-identical to the
/// in-memory path.
fn write_run_line(writer: &mut impl Write, t: &SourceTuple) -> std::io::Result<()> {
    let group = match t.group {
        GroupKey::Independent => "i".to_string(),
        GroupKey::Shared(k) => format!("s{k}"),
    };
    writeln!(
        writer,
        "{} {:016x} {:016x} {group}",
        t.tuple.id().raw(),
        t.tuple.score().to_bits(),
        t.tuple.prob().to_bits()
    )
}

impl RunFiles {
    fn new(dir: Option<PathBuf>) -> Self {
        RunFiles {
            paths: Vec::new(),
            dir: dir.unwrap_or_else(std::env::temp_dir),
        }
    }

    /// Creates (and registers for cleanup) the next run file, returning its
    /// writer. Registration happens before writing so a failed write still
    /// gets cleaned up.
    fn create_run(&mut self) -> Result<BufWriter<File>> {
        let sequence = SPILL_SEQUENCE.fetch_add(1, Ordering::Relaxed);
        let path = self
            .dir
            .join(format!("ttk-spill-{}-{sequence}.run", std::process::id()));
        let writer = BufWriter::new(File::create(&path)?);
        self.paths.push(path);
        Ok(writer)
    }

    /// Sorts `buffer` into rank order and writes it as a new run file.
    fn spill(&mut self, buffer: &mut Vec<SourceTuple>) -> Result<()> {
        buffer.sort_by_key(|t| t.tuple.rank_key());
        let mut writer = self.create_run()?;
        for t in buffer.iter() {
            write_run_line(&mut writer, t)?;
        }
        writer.flush()?;
        buffer.clear();
        Ok(())
    }

    /// Deletes the first `n` run files (after an intermediate merge pass has
    /// folded them into a larger run appended at the end).
    fn remove_first(&mut self, n: usize) {
        for path in self.paths.drain(..n) {
            let _ = std::fs::remove_file(path);
        }
    }
}

impl Drop for RunFiles {
    fn drop(&mut self) {
        for path in &self.paths {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// Fan-in control: while more than `max_fan_in` run files exist, merge the
/// oldest `max_fan_in` of them — streamed through the loser tree, never
/// buffered — into one larger run, so the final merge (and every replay)
/// fans in a bounded number of files regardless of how many runs a tiny
/// buffer produced. Each pass reduces the run count by `max_fan_in - 1`;
/// every intermediate run stays rank-sorted, so the final merged stream is
/// unchanged.
fn compact_runs(runs: &mut RunFiles, run_sizes: &mut Vec<usize>, max_fan_in: usize) -> Result<()> {
    while runs.paths.len() > max_fan_in {
        let take = max_fan_in.min(runs.paths.len());
        let mut sources = Vec::with_capacity(take);
        for (path, &tuples) in runs.paths[..take].iter().zip(run_sizes.iter()) {
            sources.push(RunSource::file(path, tuples)?);
        }
        let mut merge = MergeSource::new(sources);
        let mut writer = runs.create_run()?;
        let mut merged_tuples = 0usize;
        while let Some(t) = merge.next_tuple().map_err(PdbError::Core)? {
            write_run_line(&mut writer, &t)?;
            merged_tuples += 1;
        }
        writer.flush()?;
        drop(merge); // close the input cursors before deleting their files
        runs.remove_first(take);
        run_sizes.drain(..take);
        run_sizes.push(merged_tuples);
    }
    Ok(())
}

/// One sorted run of a spilled import: either a run file replayed from disk
/// or the final in-memory buffer that never needed spilling.
#[derive(Debug)]
enum Run {
    File(std::io::Lines<BufReader<File>>),
    Memory(std::vec::IntoIter<SourceTuple>),
}

/// A rank-ordered stream over one external-sort run.
#[derive(Debug)]
struct RunSource {
    run: Run,
    remaining: usize,
}

impl RunSource {
    fn file(path: &Path, tuples: usize) -> Result<Self> {
        Ok(RunSource {
            run: Run::File(BufReader::new(File::open(path)?).lines()),
            remaining: tuples,
        })
    }

    /// Wraps a run that is **already rank-sorted** ([`SpillIndex`] stores
    /// its in-memory tail sorted, so replays skip the comparison pass).
    fn memory(tuples: Vec<SourceTuple>) -> Self {
        debug_assert!(
            tuples
                .windows(2)
                .all(|w| w[0].tuple.rank_key() <= w[1].tuple.rank_key()),
            "in-memory runs must be rank-sorted"
        );
        RunSource {
            remaining: tuples.len(),
            run: Run::Memory(tuples.into_iter()),
        }
    }
}

/// Decodes one run-file line back into a [`SourceTuple`]. Stream-time
/// failures surface as [`ttk_uncertain::Error::Source`], the error channel of
/// the [`TupleSource`] trait.
fn decode_run_line(line: &str) -> ttk_uncertain::Result<SourceTuple> {
    let corrupt = || ttk_uncertain::Error::Source(format!("corrupt spill run record `{line}`"));
    let mut fields = line.split_ascii_whitespace();
    let id: u64 = fields
        .next()
        .and_then(|f| f.parse().ok())
        .ok_or_else(corrupt)?;
    let score_bits = fields
        .next()
        .and_then(|f| u64::from_str_radix(f, 16).ok())
        .ok_or_else(corrupt)?;
    let prob_bits = fields
        .next()
        .and_then(|f| u64::from_str_radix(f, 16).ok())
        .ok_or_else(corrupt)?;
    let group = fields.next().ok_or_else(corrupt)?;
    let tuple = UncertainTuple::new(id, f64::from_bits(score_bits), f64::from_bits(prob_bits))?;
    Ok(match group.strip_prefix('s') {
        Some(key) => SourceTuple::grouped(tuple, key.parse().map_err(|_| corrupt())?),
        None => SourceTuple::independent(tuple),
    })
}

impl TupleSource for RunSource {
    fn next_tuple(&mut self) -> ttk_uncertain::Result<Option<SourceTuple>> {
        let next = match &mut self.run {
            Run::Memory(iter) => iter.next(),
            Run::File(lines) => match lines.next() {
                None => None,
                Some(line) => {
                    let line = line.map_err(|e| {
                        ttk_uncertain::Error::Source(format!("reading spill run: {e}"))
                    })?;
                    Some(decode_run_line(&line)?)
                }
            },
        };
        if next.is_some() {
            self.remaining = self.remaining.saturating_sub(1);
        }
        Ok(next)
    }

    /// Bulk pull: decodes up to `max` run lines straight into one columnar
    /// block, so a replay (or the feed producer thread wrapping it under
    /// prefetch) pays the dispatch and channel cost once per block instead
    /// of once per line.
    fn next_block(&mut self, max: usize) -> ttk_uncertain::Result<Option<TupleBlock>> {
        let max = max.max(1);
        let mut block = TupleBlock::with_capacity(self.remaining.min(max));
        match &mut self.run {
            Run::Memory(iter) => {
                for t in iter.take(max) {
                    block.push(&t);
                }
            }
            Run::File(lines) => {
                while block.len() < max {
                    match lines.next() {
                        None => break,
                        Some(line) => {
                            let line = line.map_err(|e| {
                                ttk_uncertain::Error::Source(format!("reading spill run: {e}"))
                            })?;
                            block.push(&decode_run_line(&line)?);
                        }
                    }
                }
            }
        }
        self.remaining = self.remaining.saturating_sub(block.len());
        if block.is_empty() {
            Ok(None)
        } else {
            Ok(Some(block))
        }
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.remaining)
    }
}

/// The reusable artifact of one external-sort pass over a CSV relation: the
/// rank-sorted run files on disk, the final in-memory run, the inferred
/// schema and the record count.
///
/// Building an index is the expensive part of an out-of-core scan (two
/// passes over the CSV plus the sort of every run); **replaying** it is
/// cheap — [`SpillIndex::replay`] just reopens the run files as fresh
/// cursors under a new k-way merge. Holding the index (for example inside a
/// `CsvDataset`) therefore turns the external sort into a plan-once artifact:
/// every query after the first skips the sort pass entirely. The run files
/// are deleted when the last [`Arc`] holding the index drops.
#[derive(Debug)]
pub struct SpillIndex {
    runs: RunFiles,
    run_sizes: Vec<usize>,
    /// The final buffer that never needed spilling, already rank-sorted.
    tail: Vec<SourceTuple>,
    total_tuples: usize,
    schema: Schema,
}

impl SpillIndex {
    /// Runs the external sort over CSV text and keeps the runs as a reusable
    /// index.
    ///
    /// # Errors
    ///
    /// As [`tuple_source_from_csv`], plus [`PdbError::Io`] for run-file
    /// failures.
    pub fn from_csv_text(
        text: &str,
        options: &CsvOptions,
        score: &Expr,
        spill: &SpillOptions,
    ) -> Result<Self> {
        SpillIndex::from_csv_text_with(text, options, score, spill, &ShardImportOptions::default())
    }

    /// [`SpillIndex::from_csv_text`] with explicit [`ShardImportOptions`]
    /// (id base, hashed group keys) for serving one shard of a relation
    /// whose other shards live in other processes.
    ///
    /// # Errors
    ///
    /// As [`SpillIndex::from_csv_text`].
    pub fn from_csv_text_with(
        text: &str,
        options: &CsvOptions,
        score: &Expr,
        spill: &SpillOptions,
        import: &ShardImportOptions,
    ) -> Result<Self> {
        SpillIndex::build(|| Ok(text.as_bytes()), options, score, spill, import)
    }

    /// Runs the external sort reading straight from a file path, so the raw
    /// CSV text never needs to fit in memory either.
    ///
    /// # Errors
    ///
    /// As [`SpillIndex::from_csv_text`].
    pub fn from_csv_path(
        path: &Path,
        options: &CsvOptions,
        score: &Expr,
        spill: &SpillOptions,
    ) -> Result<Self> {
        SpillIndex::from_csv_path_with(path, options, score, spill, &ShardImportOptions::default())
    }

    /// [`SpillIndex::from_csv_path`] with explicit [`ShardImportOptions`].
    ///
    /// # Errors
    ///
    /// As [`SpillIndex::from_csv_text`].
    pub fn from_csv_path_with(
        path: &Path,
        options: &CsvOptions,
        score: &Expr,
        spill: &SpillOptions,
        import: &ShardImportOptions,
    ) -> Result<Self> {
        SpillIndex::build(
            || Ok(BufReader::new(File::open(path)?)),
            options,
            score,
            spill,
            import,
        )
    }

    /// The generic two-pass external-sort import: pass 1 infers the schema,
    /// pass 2 scores each record and spills sorted runs. `open` must yield a
    /// fresh reader over the same bytes for each pass.
    fn build<R: BufRead>(
        open: impl Fn() -> Result<R>,
        options: &CsvOptions,
        score: &Expr,
        spill: &SpillOptions,
        import: &ShardImportOptions,
    ) -> Result<Self> {
        let layout = layout_from_header(&read_header(open()?)?, options)?;

        // Pass 1: type inference only — nothing is retained per record.
        let mut types = vec![DataType::Integer; layout.data_columns.len()];
        for_each_record(open()?, &layout, |_, record| {
            for (slot, &col) in layout.data_columns.iter().enumerate() {
                types[slot] = merge_type(types[slot], &Value::infer_from_str(&record[col]));
            }
            Ok(())
        })?;
        let schema = schema_from_types(&layout, &types)?;
        score.validate(&schema)?;

        // Pass 2: score records into a bounded buffer, spilling sorted runs.
        let capacity = spill.run_buffer_tuples.max(1);
        let mut runs = RunFiles::new(spill.temp_dir.clone());
        let mut buffer: Vec<SourceTuple> = Vec::with_capacity(capacity.min(64 * 1024));
        let mut run_sizes: Vec<usize> = Vec::new();
        let mut state = ScoreState::with_import(import);
        for_each_record(open()?, &layout, |line_no, record| {
            buffer.push(state.score_record(&record, &layout, &schema, score, line_no)?);
            if buffer.len() >= capacity {
                run_sizes.push(buffer.len());
                runs.spill(&mut buffer)?;
            }
            Ok(())
        })?;
        buffer.sort_by_key(|t| t.tuple.rank_key());
        compact_runs(&mut runs, &mut run_sizes, spill.max_fan_in.max(2))?;
        Ok(SpillIndex {
            runs,
            run_sizes,
            tail: buffer,
            total_tuples: (state.next_id - import.first_tuple_id) as usize,
            schema,
        })
    }

    /// Opens fresh cursors over every run and fuses them under a new k-way
    /// merge — a complete re-scan of the relation **without re-reading or
    /// re-sorting the CSV**. The returned stream is bit-identical to the one
    /// the original import produced.
    ///
    /// # Errors
    ///
    /// [`PdbError::Io`] when a run file can no longer be opened.
    pub fn replay(self: &Arc<Self>) -> Result<SpilledSource> {
        self.replay_with(PrefetchPolicy::Off)
    }

    /// [`SpillIndex::replay`] with a per-run prefetch: under
    /// [`PrefetchPolicy::PerShard`], every run cursor is moved onto its own
    /// producer thread behind a bounded [`TupleFeed`], so run-file decoding
    /// and disk reads overlap with the loser-tree merge (and with the
    /// consumer's scan). The merged stream is bit-identical either way.
    ///
    /// # Errors
    ///
    /// [`PdbError::Io`] when a run file can no longer be opened.
    pub fn replay_with(self: &Arc<Self>, prefetch: PrefetchPolicy) -> Result<SpilledSource> {
        let mut sources: Vec<Box<dyn TupleSource + Send>> =
            Vec::with_capacity(self.runs.paths.len() + 1);
        let mut push = |run: RunSource| {
            let boxed: Box<dyn TupleSource + Send> = match prefetch.buffer() {
                None => Box::new(run),
                Some(buffer) => Box::new(TupleFeed::spawn(run, buffer)),
            };
            sources.push(boxed)
        };
        for (path, &tuples) in self.runs.paths.iter().zip(&self.run_sizes) {
            push(RunSource::file(path, tuples)?);
        }
        if !self.tail.is_empty() {
            push(RunSource::memory(self.tail.clone()));
        }
        Ok(SpilledSource {
            merge: MergeSource::new(sources),
            index: Arc::clone(self),
        })
    }

    /// Total number of runs under a replayed merge (spilled files plus the
    /// final in-memory buffer, when non-empty).
    pub fn run_count(&self) -> usize {
        self.runs.paths.len() + usize::from(!self.tail.is_empty())
    }

    /// Number of runs that were spilled to disk.
    pub fn spilled_run_count(&self) -> usize {
        self.runs.paths.len()
    }

    /// Number of data records imported.
    pub fn len(&self) -> usize {
        self.total_tuples
    }

    /// True when the relation had no data records.
    pub fn is_empty(&self) -> bool {
        self.total_tuples == 0
    }

    /// The relational schema inferred during the import's first pass.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }
}

/// A rank-ordered [`TupleSource`] over a CSV relation larger than memory:
/// sorted runs spilled to temporary files, replayed under a loser-tree k-way
/// merge. Produced by [`tuple_source_from_csv_spilled`],
/// [`tuple_source_from_csv_path`] and [`SpillIndex::replay`]; the run files
/// live as long as any replayed source (or other holder) keeps the shared
/// [`SpillIndex`] alive.
pub struct SpilledSource {
    merge: MergeSource<Box<dyn TupleSource + Send>>,
    index: Arc<SpillIndex>,
}

impl std::fmt::Debug for SpilledSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpilledSource")
            .field("runs", &self.merge.shard_count())
            .field("index", &self.index)
            .finish()
    }
}

impl SpilledSource {
    /// Total number of runs under the merge (spilled files plus the final
    /// in-memory buffer, when non-empty).
    pub fn run_count(&self) -> usize {
        self.merge.shard_count()
    }

    /// Number of runs that were spilled to disk.
    pub fn spilled_run_count(&self) -> usize {
        self.index.spilled_run_count()
    }

    /// Number of data records imported.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True when the relation had no data records.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// The shared external-sort index backing this source; clone it to
    /// replay the relation again without re-sorting.
    pub fn index(&self) -> &Arc<SpillIndex> {
        &self.index
    }
}

impl TupleSource for SpilledSource {
    fn next_tuple(&mut self) -> ttk_uncertain::Result<Option<SourceTuple>> {
        self.merge.next_tuple()
    }

    fn next_block(&mut self, max: usize) -> ttk_uncertain::Result<Option<TupleBlock>> {
        self.merge.next_block(max)
    }

    fn size_hint(&self) -> Option<usize> {
        self.merge.size_hint()
    }
}

/// Streams the raw data lines of a CSV reader — the record discipline every
/// import path (and [`count_csv_records`]) shares: the header is the first
/// non-blank line, blank lines are skipped, everything else is a data line,
/// delivered with its 1-based line number.
fn for_each_data_line<R: BufRead>(
    reader: R,
    mut visit: impl FnMut(usize, String) -> Result<()>,
) -> Result<()> {
    let mut header_seen = false;
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        if !header_seen {
            header_seen = true;
            continue;
        }
        visit(i + 1, line)?;
    }
    Ok(())
}

/// Counts the data records a CSV import of `reader` would score, without
/// parsing fields — the row count a `serve-shard` daemon registers with a
/// coordinator *before* the (leased) scoring pass runs. Shares the record
/// discipline of [`for_each_data_line`] with every import path, so the
/// leased id range always covers exactly the rows the import then assigns.
///
/// # Errors
///
/// [`PdbError::Io`] when the reader fails.
pub fn count_csv_records<R: BufRead>(reader: R) -> Result<u64> {
    let mut rows = 0u64;
    for_each_data_line(reader, |_, _| {
        rows += 1;
        Ok(())
    })?;
    Ok(rows)
}

/// Streams the data records of a CSV reader (header skipped, blank lines
/// ignored, field counts validated) through `visit` without retaining them.
fn for_each_record<R: BufRead>(
    reader: R,
    layout: &CsvLayout,
    mut visit: impl FnMut(usize, Vec<String>) -> Result<()>,
) -> Result<()> {
    for_each_data_line(reader, |line_no, line| {
        let record = split_record(&line, line_no)?;
        if record.len() != layout.header.len() {
            return Err(PdbError::CsvError {
                line: line_no,
                message: format!(
                    "expected {} fields, got {}",
                    layout.header.len(),
                    record.len()
                ),
            });
        }
        visit(line_no, record)
    })
}

/// Reads the header line (the first non-blank line) of a CSV reader.
fn read_header<R: BufRead>(reader: R) -> Result<String> {
    for line in reader.lines() {
        let line = line?;
        if !line.trim().is_empty() {
            return Ok(line);
        }
    }
    Err(PdbError::CsvError {
        line: 1,
        message: "missing header row".into(),
    })
}

/// Out-of-core variant of [`tuple_source_from_csv`]: scores CSV text into
/// rank-ordered runs of at most `spill.run_buffer_tuples` tuples, spilling
/// full runs to temporary files, and returns the k-way merge over the runs.
///
/// The merged stream is **bit-identical** to what [`tuple_source_from_csv`]
/// produces for the same input, while peak memory stays bounded by the run
/// buffer — the path that lets `ttk query` scan relations larger than RAM.
/// One-shot convenience over [`SpillIndex::from_csv_text`] + replay; hold
/// the [`SpilledSource::index`] to re-scan without re-sorting.
///
/// # Errors
///
/// As [`tuple_source_from_csv`], plus [`PdbError::Io`] for run-file failures.
pub fn tuple_source_from_csv_spilled(
    text: &str,
    options: &CsvOptions,
    score: &Expr,
    spill: &SpillOptions,
) -> Result<SpilledSource> {
    Arc::new(SpillIndex::from_csv_text(text, options, score, spill)?).replay()
}

/// [`tuple_source_from_csv_spilled`] reading straight from a file path, so
/// the raw CSV text never needs to fit in memory either.
///
/// # Errors
///
/// As [`tuple_source_from_csv_spilled`].
pub fn tuple_source_from_csv_path(
    path: &Path,
    options: &CsvOptions,
    score: &Expr,
    spill: &SpillOptions,
) -> Result<SpilledSource> {
    Arc::new(SpillIndex::from_csv_path(path, options, score, spill)?).replay()
}

/// Serialises a probabilistic table back to CSV (probability and group
/// columns appended after the data columns).
pub fn table_to_csv(table: &PTable, options: &CsvOptions) -> String {
    let mut out = String::new();
    let mut header: Vec<String> = table
        .schema()
        .columns()
        .iter()
        .map(|c| c.name.clone())
        .collect();
    header.push(options.probability_column.clone());
    if let Some(g) = &options.group_column {
        header.push(g.clone());
    }
    out.push_str(&header.join(","));
    out.push('\n');
    for row in table.rows() {
        let mut fields: Vec<String> = row.values.iter().map(escape_field).collect();
        fields.push(format!("{}", row.probability));
        if options.group_column.is_some() {
            fields.push(row.group.clone().unwrap_or_default());
        }
        out.push_str(&fields.join(","));
        out.push('\n');
    }
    out
}

fn escape_field(value: &Value) -> String {
    let s = value.to_string();
    if s.contains(',') || s.contains('"') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
segment_id,speed_limit,length,delay,probability,group_key
1,50,1000,120,0.6,seg-1
1,50,1000,300,0.4,seg-1
2,30,500,90,1.0,seg-2
3,60,\"1,200\",100,0.5,
";

    #[test]
    fn imports_a_table_with_groups_and_quotes() {
        let t = table_from_csv("area", SAMPLE, &CsvOptions::default()).unwrap();
        assert_eq!(t.len(), 4);
        assert_eq!(t.schema().len(), 4);
        assert_eq!(t.rows()[0].group.as_deref(), Some("seg-1"));
        assert_eq!(t.rows()[3].group, None);
        // The quoted "1,200" stays one field and becomes text (not numeric).
        assert_eq!(t.rows()[3].values[2], Value::Text("1,200".into()));
        // speed_limit is inferred as integer, delay as integer, probability
        // column is stripped from the schema.
        assert!(t.schema().index_of("probability").is_err());
    }

    #[test]
    fn round_trips_through_export_and_import() {
        let t = table_from_csv("area", SAMPLE, &CsvOptions::default()).unwrap();
        let text = table_to_csv(&t, &CsvOptions::default());
        let t2 = table_from_csv("area", &text, &CsvOptions::default()).unwrap();
        assert_eq!(t.len(), t2.len());
        for (a, b) in t.rows().iter().zip(t2.rows()) {
            assert_eq!(a.probability, b.probability);
            assert_eq!(a.group, b.group);
        }
    }

    #[test]
    fn reports_malformed_input() {
        assert!(matches!(
            table_from_csv("x", "", &CsvOptions::default()),
            Err(PdbError::CsvError { .. })
        ));
        let missing_prob = "a,b\n1,2\n";
        assert!(matches!(
            table_from_csv("x", missing_prob, &CsvOptions::default()),
            Err(PdbError::CsvError { line: 1, .. })
        ));
        let ragged = "a,probability\n1,0.5\n2\n";
        assert!(matches!(
            table_from_csv("x", ragged, &CsvOptions::default()),
            Err(PdbError::CsvError { line: 3, .. })
        ));
        let bad_prob = "a,probability\n1,huh\n";
        assert!(matches!(
            table_from_csv("x", bad_prob, &CsvOptions::default()),
            Err(PdbError::CsvError { line: 2, .. })
        ));
        let unterminated = "a,probability\n\"oops,0.5\n";
        assert!(matches!(
            table_from_csv("x", unterminated, &CsvOptions::default()),
            Err(PdbError::CsvError { .. })
        ));
    }

    #[test]
    fn tuple_source_matches_the_table_route() {
        use ttk_uncertain::TupleSource;

        let csv = "\
speed_limit,length,delay,probability,group_key
50,1000,120,0.6,seg-1
50,1000,300,0.4,seg-1
30,500,90,1.0,seg-2
60,900,240,0.5,
";
        let expr = crate::parser::parse_expression("speed_limit / (length / delay)").unwrap();
        let mut direct = tuple_source_from_csv(csv, &CsvOptions::default(), &expr).unwrap();
        let table = table_from_csv("area", csv, &CsvOptions::default()).unwrap();
        let mut via_table = table.to_tuple_source(&expr).unwrap();
        loop {
            let a = direct.next_tuple().unwrap();
            let b = via_table.next_tuple().unwrap();
            match (a, b) {
                (None, None) => break,
                (Some(a), Some(b)) => {
                    assert_eq!(a.tuple.id(), b.tuple.id());
                    assert_eq!(a.tuple.score(), b.tuple.score());
                    assert_eq!(a.tuple.prob(), b.tuple.prob());
                    // Group keys are source-local; only the partition must
                    // match, which the id pairing above implies per stream.
                }
                (a, b) => panic!("stream length mismatch: {a:?} vs {b:?}"),
            }
        }
        // Expression referencing an unknown column fails up front.
        let bad = crate::parser::parse_expression("nope + 1").unwrap();
        assert!(tuple_source_from_csv(csv, &CsvOptions::default(), &bad).is_err());
    }

    fn drain(source: &mut dyn TupleSource) -> Vec<SourceTuple> {
        let mut out = Vec::new();
        while let Some(t) = source.next_tuple().unwrap() {
            out.push(t);
        }
        out
    }

    /// A CSV with many rows, score ties and ME groups straddling arbitrary
    /// run boundaries.
    fn big_csv(rows: usize) -> String {
        let mut csv = String::from("score,probability,group_key\n");
        for i in 0..rows {
            let score = (i * 13) % 37;
            let prob = 0.05 + 0.01 * ((i % 30) as f64);
            let group = if i % 4 == 0 {
                format!("g{}", i / 8)
            } else {
                String::new()
            };
            csv.push_str(&format!("{score},{prob},{group}\n"));
        }
        csv
    }

    #[test]
    fn spilled_source_is_bit_identical_to_the_in_memory_path() {
        let csv = big_csv(500);
        let expr = crate::parser::parse_expression("score").unwrap();
        let in_memory =
            drain(&mut tuple_source_from_csv(&csv, &CsvOptions::default(), &expr).unwrap());
        for run_buffer in [7usize, 64, 499, 500, 10_000] {
            let mut spilled = tuple_source_from_csv_spilled(
                &csv,
                &CsvOptions::default(),
                &expr,
                &SpillOptions::with_run_buffer(run_buffer),
            )
            .unwrap();
            assert_eq!(spilled.len(), 500);
            if run_buffer <= 500 {
                // The import spills; fan-in control then folds the runs into
                // at most `max_fan_in` (default 64) larger runs.
                let initial_runs = 500 / run_buffer.max(1);
                let max_fan_in = SpillOptions::default().max_fan_in;
                if initial_runs <= max_fan_in {
                    assert_eq!(
                        spilled.spilled_run_count(),
                        initial_runs,
                        "run buffer {run_buffer} must spill"
                    );
                } else {
                    let count = spilled.spilled_run_count();
                    assert!(
                        count >= 2 && count <= max_fan_in,
                        "fan-in bound violated for run buffer {run_buffer}: {count} runs"
                    );
                }
            } else {
                assert_eq!(spilled.spilled_run_count(), 0);
            }
            assert_eq!(spilled.size_hint(), Some(500));
            let streamed = drain(&mut spilled);
            assert_eq!(streamed, in_memory, "run buffer {run_buffer}");
        }
    }

    #[test]
    fn spill_index_replays_without_recreating_runs() {
        let dir = std::env::temp_dir().join(format!("ttk-spill-replay-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let csv = big_csv(300);
        let expr = crate::parser::parse_expression("score").unwrap();
        let spill = SpillOptions {
            run_buffer_tuples: 64,
            temp_dir: Some(dir.clone()),
            ..SpillOptions::default()
        };
        let index = Arc::new(
            SpillIndex::from_csv_text(&csv, &CsvOptions::default(), &expr, &spill).unwrap(),
        );
        assert_eq!(index.len(), 300);
        assert_eq!(index.spilled_run_count(), 300 / 64);
        assert_eq!(index.run_count(), 300 / 64 + 1);
        assert!(index.schema().index_of("score").is_ok());
        let files_after_build: Vec<String> = {
            let mut names: Vec<String> = std::fs::read_dir(&dir)
                .unwrap()
                .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
                .collect();
            names.sort();
            names
        };
        let first = drain(&mut index.replay().unwrap());
        let second = drain(&mut index.replay().unwrap());
        assert_eq!(first, second);
        assert_eq!(first.len(), 300);
        // Replaying reopened the existing run files; no new ones appeared.
        let files_after_replays: Vec<String> = {
            let mut names: Vec<String> = std::fs::read_dir(&dir)
                .unwrap()
                .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
                .collect();
            names.sort();
            names
        };
        assert_eq!(files_after_build, files_after_replays);
        // A replayed source keeps the index (and its files) alive.
        let survivor = index.replay().unwrap();
        drop(index);
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 300 / 64);
        drop(survivor);
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 0);
        std::fs::remove_dir(&dir).ok();
    }

    #[test]
    fn spilled_run_files_are_removed_on_drop() {
        let dir = std::env::temp_dir().join(format!("ttk-spill-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let csv = big_csv(100);
        let expr = crate::parser::parse_expression("score").unwrap();
        let spill = SpillOptions {
            run_buffer_tuples: 10,
            temp_dir: Some(dir.clone()),
            ..SpillOptions::default()
        };
        let source =
            tuple_source_from_csv_spilled(&csv, &CsvOptions::default(), &expr, &spill).unwrap();
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 10);
        drop(source);
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 0);
        std::fs::remove_dir(&dir).ok();
    }

    #[test]
    fn spilled_path_from_file_and_error_reporting() {
        let path = std::env::temp_dir().join(format!("ttk-spill-input-{}.csv", std::process::id()));
        std::fs::write(&path, big_csv(120)).unwrap();
        let expr = crate::parser::parse_expression("score").unwrap();
        let mut from_path = tuple_source_from_csv_path(
            &path,
            &CsvOptions::default(),
            &expr,
            &SpillOptions::with_run_buffer(16),
        )
        .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let in_memory =
            drain(&mut tuple_source_from_csv(&text, &CsvOptions::default(), &expr).unwrap());
        assert_eq!(drain(&mut from_path), in_memory);
        std::fs::remove_file(&path).unwrap();

        // Missing files and malformed input surface as errors.
        assert!(matches!(
            tuple_source_from_csv_path(
                Path::new("/nonexistent/ttk.csv"),
                &CsvOptions::default(),
                &expr,
                &SpillOptions::default()
            ),
            Err(PdbError::Io(_))
        ));
        assert!(tuple_source_from_csv_spilled(
            "score,probability\n1,huh\n",
            &CsvOptions::default(),
            &expr,
            &SpillOptions::default()
        )
        .is_err());
    }

    #[test]
    fn shard_sources_share_ids_and_group_namespaces() {
        let expr = crate::parser::parse_expression("score").unwrap();
        // One relation split across two shard files; group "g1" spans both.
        let shard_a = "score,probability,group_key\n10,0.4,g1\n5,0.5,\n";
        let shard_b = "score,probability,group_key\n8,0.5,g1\n7,0.9,g2\n";
        let shards =
            shard_sources_from_csv(&[shard_a, shard_b], &CsvOptions::default(), &expr).unwrap();
        assert_eq!(shards.len(), 2);
        let merged = drain(&mut MergeSource::new(shards));
        // Ids count across shards: 0,1 in shard A; 2,3 in shard B.
        let ids: Vec<u64> = merged.iter().map(|t| t.tuple.id().raw()).collect();
        assert_eq!(ids, vec![0, 2, 3, 1]);
        // The g1 rows of both shards share one group key.
        assert_eq!(merged[0].group, merged[1].group);
        assert!(matches!(merged[0].group, GroupKey::Shared(_)));
        assert_ne!(merged[2].group, merged[0].group);
        // Equals the single-file import of the concatenation.
        let combined = "score,probability,group_key\n10,0.4,g1\n5,0.5,\n8,0.5,g1\n7,0.9,g2\n";
        let single =
            drain(&mut tuple_source_from_csv(combined, &CsvOptions::default(), &expr).unwrap());
        assert_eq!(merged, single);
        // A shard whose schema misses the scored column fails validation.
        assert!(shard_sources_from_csv(
            &[shard_a, "other,probability\n1,0.5\n"],
            &CsvOptions::default(),
            &expr
        )
        .is_err());
    }

    #[test]
    fn fan_in_control_folds_hundreds_of_runs_and_stays_bit_identical() {
        let dir = std::env::temp_dir().join(format!("ttk-fan-in-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let csv = big_csv(400);
        let expr = crate::parser::parse_expression("score").unwrap();
        let in_memory =
            drain(&mut tuple_source_from_csv(&csv, &CsvOptions::default(), &expr).unwrap());

        // A 3-tuple buffer forces 133 runs — well past the fan-in bound of 8,
        // so several intermediate merge passes must run.
        let spill = SpillOptions {
            run_buffer_tuples: 3,
            temp_dir: Some(dir.clone()),
            max_fan_in: 8,
        };
        let index = Arc::new(
            SpillIndex::from_csv_text(&csv, &CsvOptions::default(), &expr, &spill).unwrap(),
        );
        let initial_runs = 400usize.div_ceil(spill.run_buffer_tuples);
        assert!(
            initial_runs > 100,
            "the workload must force 100+ initial runs, got {initial_runs}"
        );
        assert!(
            index.spilled_run_count() <= 8,
            "{} runs survive a max_fan_in of 8",
            index.spilled_run_count()
        );
        assert!(index.spilled_run_count() >= 2);
        assert_eq!(index.len(), 400);
        // The files on disk match the bookkeeping (intermediate inputs were
        // deleted as they were folded).
        assert_eq!(
            std::fs::read_dir(&dir).unwrap().count(),
            index.spilled_run_count()
        );

        // Replays are bit-identical to the in-memory import, with and
        // without per-run prefetching.
        for prefetch in [PrefetchPolicy::Off, PrefetchPolicy::per_shard(4)] {
            let streamed = drain(&mut index.replay_with(prefetch).unwrap());
            assert_eq!(streamed, in_memory, "{prefetch:?}");
        }

        drop(index);
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 0);
        std::fs::remove_dir(&dir).ok();
    }

    #[test]
    fn prefetched_replay_is_bit_identical_and_surfaces_errors() {
        let csv = big_csv(200);
        let expr = crate::parser::parse_expression("score").unwrap();
        let index = Arc::new(
            SpillIndex::from_csv_text(
                &csv,
                &CsvOptions::default(),
                &expr,
                &SpillOptions::with_run_buffer(16),
            )
            .unwrap(),
        );
        let plain = drain(&mut index.replay().unwrap());
        let prefetched = drain(&mut index.replay_with(PrefetchPolicy::per_shard(2)).unwrap());
        assert_eq!(plain, prefetched);

        // Corrupt a run file behind the index's back: the prefetched replay
        // must surface the decode failure as an error, not hang or truncate.
        let victim = index.runs.paths[0].clone();
        let bytes = std::fs::read(&victim).unwrap();
        std::fs::write(&victim, "these are not tuple bits\n").unwrap();
        let mut broken = index.replay_with(PrefetchPolicy::per_shard(2)).unwrap();
        let mut result = Ok(());
        loop {
            match broken.next_tuple() {
                Ok(Some(_)) => continue,
                Ok(None) => break,
                Err(e) => {
                    result = Err(e);
                    break;
                }
            }
        }
        assert!(
            matches!(result, Err(ttk_uncertain::Error::Source(_))),
            "{result:?}"
        );
        std::fs::write(&victim, bytes).unwrap(); // restore for clean drop
    }

    #[test]
    fn hashed_group_keys_unify_across_independent_imports() {
        let expr = crate::parser::parse_expression("score").unwrap();
        // One relation split across two shard files; group "g1" spans both,
        // but each shard is imported by an *independent* ScoreState (as two
        // serve-shard processes would).
        let shard_a = "score,probability,group_key\n10,0.4,g1\n5,0.5,\n";
        let shard_b = "score,probability,group_key\n8,0.5,g1\n7,0.9,g2\n";
        let a = shard_sources_from_csv_with(
            &[shard_a],
            &CsvOptions::default(),
            &expr,
            &ShardImportOptions {
                first_tuple_id: 0,
                hashed_group_keys: true,
            },
        )
        .unwrap()
        .pop()
        .unwrap();
        let b = shard_sources_from_csv_with(
            &[shard_b],
            &CsvOptions::default(),
            &expr,
            &ShardImportOptions {
                first_tuple_id: 2, // shard A holds rows 0..2
                hashed_group_keys: true,
            },
        )
        .unwrap()
        .pop()
        .unwrap();
        let merged = drain(&mut MergeSource::new(vec![a, b]));
        // Same ids as the coordinated single-process import of both shards.
        let ids: Vec<u64> = merged.iter().map(|t| t.tuple.id().raw()).collect();
        assert_eq!(ids, vec![0, 2, 3, 1]);
        // The g1 rows of both shards share one (hashed) key; g2 differs.
        assert_eq!(merged[0].group, merged[1].group);
        assert!(matches!(merged[0].group, GroupKey::Shared(_)));
        assert_ne!(merged[2].group, merged[0].group);
        // The group *partition* matches the coordinated import exactly.
        let coordinated = drain(&mut MergeSource::new(
            shard_sources_from_csv(&[shard_a, shard_b], &CsvOptions::default(), &expr).unwrap(),
        ));
        for (x, y) in merged.iter().zip(&coordinated) {
            assert_eq!(x.tuple, y.tuple);
            assert_eq!(
                matches!(x.group, GroupKey::Shared(_)),
                matches!(y.group, GroupKey::Shared(_))
            );
        }
    }

    #[test]
    fn non_finite_scores_and_probabilities_are_rejected_at_parse_time() {
        let expr = crate::parser::parse_expression("score").unwrap();
        // `nan` parses as an f64 but would corrupt the total rank order the
        // loser-tree merge and scan gate rely on; the error names row and
        // column.
        let nan_score = "score,probability\n1.5,0.5\nnan,0.5\n";
        let err = tuple_source_from_csv(nan_score, &CsvOptions::default(), &expr).unwrap_err();
        match &err {
            PdbError::CsvError { line, message } => {
                assert_eq!(*line, 3);
                assert!(message.contains("non-finite score"), "{message}");
                assert!(message.contains("score"), "{message}");
            }
            other => panic!("expected CsvError, got {other:?}"),
        }
        // The spilled (out-of-core) import runs the same validation.
        assert!(matches!(
            tuple_source_from_csv_spilled(
                nan_score,
                &CsvOptions::default(),
                &expr,
                &SpillOptions::with_run_buffer(1)
            ),
            Err(PdbError::CsvError { line: 3, .. })
        ));
        // An infinite score is just as rank-hostile as a NaN.
        let inf_score = "score,probability\ninf,0.5\n";
        assert!(matches!(
            tuple_source_from_csv(inf_score, &CsvOptions::default(), &expr),
            Err(PdbError::CsvError { line: 2, .. })
        ));
        // Non-finite probabilities are rejected naming the metadata column.
        let nan_prob = "score,probability\n1.0,NaN\n";
        let err = table_from_csv("x", nan_prob, &CsvOptions::default()).unwrap_err();
        match &err {
            PdbError::CsvError { line, message } => {
                assert_eq!(*line, 2);
                assert!(message.contains("non-finite probability"), "{message}");
                assert!(message.contains("`probability`"), "{message}");
            }
            other => panic!("expected CsvError, got {other:?}"),
        }
        assert!(matches!(
            tuple_source_from_csv(
                "score,probability\n1.0,inf\n",
                &CsvOptions::default(),
                &expr
            ),
            Err(PdbError::CsvError { line: 2, .. })
        ));
    }

    #[test]
    fn record_counting_matches_the_import_discipline() {
        let csv = "\n\nscore,probability\n1,0.5\n\n2,0.25\n   \n3,0.125\n";
        assert_eq!(count_csv_records(csv.as_bytes()).unwrap(), 3);
        let expr = crate::parser::parse_expression("score").unwrap();
        let imported = tuple_source_from_csv(csv, &CsvOptions::default(), &expr).unwrap();
        assert_eq!(
            count_csv_records(csv.as_bytes()).unwrap(),
            imported.size_hint().unwrap() as u64,
            "the count a coordinator leases must equal the rows the import scores"
        );
        // Headers-only and empty inputs count zero records.
        assert_eq!(
            count_csv_records("score,probability\n".as_bytes()).unwrap(),
            0
        );
        assert_eq!(count_csv_records("".as_bytes()).unwrap(), 0);
    }

    #[test]
    fn import_options_follow_a_lease() {
        let lease = ttk_uncertain::ShardAssignment {
            id_base: 77,
            namespace: "coord-1".into(),
        };
        let import = ShardImportOptions::from(&lease);
        assert_eq!(import.first_tuple_id, 77);
        assert!(import.hashed_group_keys);
    }

    #[test]
    fn group_column_is_optional() {
        let options = CsvOptions {
            probability_column: "p".into(),
            group_column: None,
        };
        let csv = "score,p\n10,0.5\n20,0.25\n";
        let t = table_from_csv("simple", csv, &options).unwrap();
        assert_eq!(t.len(), 2);
        assert!(t.rows().iter().all(|r| r.group.is_none()));
    }
}
