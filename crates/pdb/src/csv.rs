//! Minimal CSV import/export for probabilistic tables.
//!
//! The format is conventional RFC-4180-style CSV with a header row. Two
//! designated columns carry the uncertainty metadata:
//!
//! * the *probability column* (required) holds the membership probability;
//! * the *group column* (optional) holds the x-tuple key — rows sharing a
//!   non-empty key are mutually exclusive.
//!
//! Both metadata columns are stripped from the relational schema; all other
//! columns are type-inferred (integer → float → boolean → text).

use std::collections::HashMap;

use ttk_uncertain::{SourceTuple, UncertainTuple, VecSource};

use crate::error::{PdbError, Result};
use crate::expr::Expr;
use crate::schema::{Column, Schema};
use crate::table::PTable;
use crate::value::{DataType, Value};

/// Options controlling CSV import.
#[derive(Debug, Clone)]
pub struct CsvOptions {
    /// Name of the column holding membership probabilities.
    pub probability_column: String,
    /// Name of the column holding x-tuple group keys, if any.
    pub group_column: Option<String>,
}

impl Default for CsvOptions {
    fn default() -> Self {
        CsvOptions {
            probability_column: "probability".to_string(),
            group_column: Some("group_key".to_string()),
        }
    }
}

/// Splits one CSV record, honouring double-quoted fields with embedded commas
/// and doubled quotes.
fn split_record(line: &str, line_no: usize) -> Result<Vec<String>> {
    let mut fields = Vec::new();
    let mut field = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        match c {
            '"' if in_quotes => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    field.push('"');
                } else {
                    in_quotes = false;
                }
            }
            '"' if field.is_empty() => in_quotes = true,
            '"' => {
                return Err(PdbError::CsvError {
                    line: line_no,
                    message: "unexpected quote in unquoted field".into(),
                })
            }
            ',' if !in_quotes => {
                fields.push(std::mem::take(&mut field));
            }
            c => field.push(c),
        }
    }
    if in_quotes {
        return Err(PdbError::CsvError {
            line: line_no,
            message: "unterminated quoted field".into(),
        });
    }
    fields.push(field);
    Ok(fields)
}

/// The structural layout of a CSV file: header names plus the positions of
/// the metadata columns.
struct CsvLayout {
    header: Vec<String>,
    prob_idx: usize,
    group_idx: Option<usize>,
    data_columns: Vec<usize>,
}

/// Parses the header row and locates the probability/group columns.
fn parse_layout(text: &str, options: &CsvOptions) -> Result<CsvLayout> {
    let header_line = text
        .lines()
        .find(|l| !l.trim().is_empty())
        .ok_or(PdbError::CsvError {
            line: 1,
            message: "missing header row".into(),
        })?;
    let header = split_record(header_line, 1)?;
    let prob_idx = header
        .iter()
        .position(|h| h.trim() == options.probability_column)
        .ok_or_else(|| PdbError::CsvError {
            line: 1,
            message: format!(
                "probability column `{}` not found in header",
                options.probability_column
            ),
        })?;
    let group_idx = match &options.group_column {
        Some(name) => header.iter().position(|h| h.trim() == *name),
        None => None,
    };
    let data_columns: Vec<usize> = (0..header.len())
        .filter(|&i| i != prob_idx && Some(i) != group_idx)
        .collect();
    Ok(CsvLayout {
        header,
        prob_idx,
        group_idx,
        data_columns,
    })
}

/// Parses the data records of a CSV text once (header skipped, blank lines
/// ignored), validating field counts against the layout. Returned as
/// `(line number, fields)` pairs so both the type-inference and the loading
/// pass run over the same parse.
fn parse_records(text: &str, layout: &CsvLayout) -> Result<Vec<(usize, Vec<String>)>> {
    let mut lines = text
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty());
    lines.next(); // The header.
    let mut records = Vec::new();
    for (i, line) in lines {
        let record = split_record(line, i + 1)?;
        if record.len() != layout.header.len() {
            return Err(PdbError::CsvError {
                line: i + 1,
                message: format!(
                    "expected {} fields, got {}",
                    layout.header.len(),
                    record.len()
                ),
            });
        }
        records.push((i + 1, record));
    }
    Ok(records)
}

/// Widens a column type to accommodate one more inferred value.
fn merge_type(ty: DataType, value: &Value) -> DataType {
    match value {
        Value::Integer(_) | Value::Null => ty,
        Value::Float(_) => {
            if ty == DataType::Integer {
                DataType::Float
            } else {
                ty
            }
        }
        Value::Boolean(_) => {
            if ty == DataType::Integer {
                DataType::Boolean
            } else if ty != DataType::Boolean {
                DataType::Text
            } else {
                ty
            }
        }
        Value::Text(_) => DataType::Text,
    }
}

/// Infers the relational schema of the data columns over the parsed records.
fn infer_schema(records: &[(usize, Vec<String>)], layout: &CsvLayout) -> Result<Schema> {
    let mut types = vec![DataType::Integer; layout.data_columns.len()];
    for (_, record) in records {
        for (slot, &col) in layout.data_columns.iter().enumerate() {
            types[slot] = merge_type(types[slot], &Value::infer_from_str(&record[col]));
        }
    }
    let columns = layout
        .data_columns
        .iter()
        .zip(&types)
        .map(|(&col, &ty)| Column::new(layout.header[col].trim(), ty))
        .collect();
    Schema::new(columns)
}

fn parse_probability(record: &[String], layout: &CsvLayout, line_no: usize) -> Result<f64> {
    record[layout.prob_idx]
        .trim()
        .parse()
        .map_err(|_| PdbError::CsvError {
            line: line_no,
            message: format!("invalid probability `{}`", record[layout.prob_idx]),
        })
}

fn group_key<'a>(record: &'a [String], layout: &CsvLayout) -> Option<&'a str> {
    layout.group_idx.and_then(|g| {
        let key = record[g].trim();
        (!key.is_empty()).then_some(key)
    })
}

/// Parses CSV text into a probabilistic table.
///
/// # Errors
///
/// Returns [`PdbError::CsvError`] for malformed input (missing header,
/// missing probability column, ragged rows, unparsable probabilities) and
/// propagates schema/probability validation errors from [`PTable::insert`].
pub fn table_from_csv(name: &str, text: &str, options: &CsvOptions) -> Result<PTable> {
    let layout = parse_layout(text, options)?;
    let records = parse_records(text, &layout)?;
    let schema = infer_schema(&records, &layout)?;
    let mut table = PTable::new(name, schema);
    for (line_no, record) in &records {
        let probability = parse_probability(record, &layout, *line_no)?;
        let values: Vec<Value> = layout
            .data_columns
            .iter()
            .map(|&c| Value::infer_from_str(&record[c]))
            .collect();
        table.insert(values, probability, group_key(record, &layout))?;
    }
    Ok(table)
}

/// Parses CSV text straight into a rank-ordered
/// [`TupleSource`](ttk_uncertain::TupleSource), scoring each row with the
/// given expression as it is read.
///
/// Unlike [`table_from_csv`] + [`PTable::to_tuple_source`], no relational
/// table is built: after one parsing pass only the `(row index, score,
/// probability, group)` quadruple of each record is retained, so the
/// resulting source's footprint is independent of the relation's width.
/// Tuple ids are 0-based data-record indexes, matching the row indexes a
/// [`table_from_csv`] import would assign.
///
/// # Errors
///
/// Returns [`PdbError::CsvError`] for malformed input, expression
/// validation/evaluation errors, and tuple validation errors.
pub fn tuple_source_from_csv(text: &str, options: &CsvOptions, score: &Expr) -> Result<VecSource> {
    let layout = parse_layout(text, options)?;
    let records = parse_records(text, &layout)?;
    let schema = infer_schema(&records, &layout)?;
    score.validate(&schema)?;
    let mut key_of_group: HashMap<String, u64> = HashMap::new();
    let mut tuples = Vec::with_capacity(records.len());
    let mut row_values = Vec::with_capacity(layout.data_columns.len());
    for (line_no, record) in &records {
        let probability = parse_probability(record, &layout, *line_no)?;
        row_values.clear();
        row_values.extend(
            layout
                .data_columns
                .iter()
                .map(|&c| Value::infer_from_str(&record[c])),
        );
        let score_value = score.evaluate(&schema, &row_values)?;
        let tuple = UncertainTuple::new(tuples.len() as u64, score_value, probability)
            .map_err(PdbError::Core)?;
        tuples.push(match group_key(record, &layout) {
            Some(g) => {
                let next_key = key_of_group.len() as u64;
                let key = *key_of_group.entry(g.to_string()).or_insert(next_key);
                SourceTuple::grouped(tuple, key)
            }
            None => SourceTuple::independent(tuple),
        });
    }
    Ok(VecSource::new(tuples))
}

/// Serialises a probabilistic table back to CSV (probability and group
/// columns appended after the data columns).
pub fn table_to_csv(table: &PTable, options: &CsvOptions) -> String {
    let mut out = String::new();
    let mut header: Vec<String> = table
        .schema()
        .columns()
        .iter()
        .map(|c| c.name.clone())
        .collect();
    header.push(options.probability_column.clone());
    if let Some(g) = &options.group_column {
        header.push(g.clone());
    }
    out.push_str(&header.join(","));
    out.push('\n');
    for row in table.rows() {
        let mut fields: Vec<String> = row.values.iter().map(escape_field).collect();
        fields.push(format!("{}", row.probability));
        if options.group_column.is_some() {
            fields.push(row.group.clone().unwrap_or_default());
        }
        out.push_str(&fields.join(","));
        out.push('\n');
    }
    out
}

fn escape_field(value: &Value) -> String {
    let s = value.to_string();
    if s.contains(',') || s.contains('"') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
segment_id,speed_limit,length,delay,probability,group_key
1,50,1000,120,0.6,seg-1
1,50,1000,300,0.4,seg-1
2,30,500,90,1.0,seg-2
3,60,\"1,200\",100,0.5,
";

    #[test]
    fn imports_a_table_with_groups_and_quotes() {
        let t = table_from_csv("area", SAMPLE, &CsvOptions::default()).unwrap();
        assert_eq!(t.len(), 4);
        assert_eq!(t.schema().len(), 4);
        assert_eq!(t.rows()[0].group.as_deref(), Some("seg-1"));
        assert_eq!(t.rows()[3].group, None);
        // The quoted "1,200" stays one field and becomes text (not numeric).
        assert_eq!(t.rows()[3].values[2], Value::Text("1,200".into()));
        // speed_limit is inferred as integer, delay as integer, probability
        // column is stripped from the schema.
        assert!(t.schema().index_of("probability").is_err());
    }

    #[test]
    fn round_trips_through_export_and_import() {
        let t = table_from_csv("area", SAMPLE, &CsvOptions::default()).unwrap();
        let text = table_to_csv(&t, &CsvOptions::default());
        let t2 = table_from_csv("area", &text, &CsvOptions::default()).unwrap();
        assert_eq!(t.len(), t2.len());
        for (a, b) in t.rows().iter().zip(t2.rows()) {
            assert_eq!(a.probability, b.probability);
            assert_eq!(a.group, b.group);
        }
    }

    #[test]
    fn reports_malformed_input() {
        assert!(matches!(
            table_from_csv("x", "", &CsvOptions::default()),
            Err(PdbError::CsvError { .. })
        ));
        let missing_prob = "a,b\n1,2\n";
        assert!(matches!(
            table_from_csv("x", missing_prob, &CsvOptions::default()),
            Err(PdbError::CsvError { line: 1, .. })
        ));
        let ragged = "a,probability\n1,0.5\n2\n";
        assert!(matches!(
            table_from_csv("x", ragged, &CsvOptions::default()),
            Err(PdbError::CsvError { line: 3, .. })
        ));
        let bad_prob = "a,probability\n1,huh\n";
        assert!(matches!(
            table_from_csv("x", bad_prob, &CsvOptions::default()),
            Err(PdbError::CsvError { line: 2, .. })
        ));
        let unterminated = "a,probability\n\"oops,0.5\n";
        assert!(matches!(
            table_from_csv("x", unterminated, &CsvOptions::default()),
            Err(PdbError::CsvError { .. })
        ));
    }

    #[test]
    fn tuple_source_matches_the_table_route() {
        use ttk_uncertain::TupleSource;

        let csv = "\
speed_limit,length,delay,probability,group_key
50,1000,120,0.6,seg-1
50,1000,300,0.4,seg-1
30,500,90,1.0,seg-2
60,900,240,0.5,
";
        let expr = crate::parser::parse_expression("speed_limit / (length / delay)").unwrap();
        let mut direct = tuple_source_from_csv(csv, &CsvOptions::default(), &expr).unwrap();
        let table = table_from_csv("area", csv, &CsvOptions::default()).unwrap();
        let mut via_table = table.to_tuple_source(&expr).unwrap();
        loop {
            let a = direct.next_tuple().unwrap();
            let b = via_table.next_tuple().unwrap();
            match (a, b) {
                (None, None) => break,
                (Some(a), Some(b)) => {
                    assert_eq!(a.tuple.id(), b.tuple.id());
                    assert_eq!(a.tuple.score(), b.tuple.score());
                    assert_eq!(a.tuple.prob(), b.tuple.prob());
                    // Group keys are source-local; only the partition must
                    // match, which the id pairing above implies per stream.
                }
                (a, b) => panic!("stream length mismatch: {a:?} vs {b:?}"),
            }
        }
        // Expression referencing an unknown column fails up front.
        let bad = crate::parser::parse_expression("nope + 1").unwrap();
        assert!(tuple_source_from_csv(csv, &CsvOptions::default(), &bad).is_err());
    }

    #[test]
    fn group_column_is_optional() {
        let options = CsvOptions {
            probability_column: "p".into(),
            group_column: None,
        };
        let csv = "score,p\n10,0.5\n20,0.25\n";
        let t = table_from_csv("simple", csv, &options).unwrap();
        assert_eq!(t.len(), 2);
        assert!(t.rows().iter().all(|r| r.group.is_none()));
    }
}
