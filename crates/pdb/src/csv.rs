//! Minimal CSV import/export for probabilistic tables.
//!
//! The format is conventional RFC-4180-style CSV with a header row. Two
//! designated columns carry the uncertainty metadata:
//!
//! * the *probability column* (required) holds the membership probability;
//! * the *group column* (optional) holds the x-tuple key — rows sharing a
//!   non-empty key are mutually exclusive.
//!
//! Both metadata columns are stripped from the relational schema; all other
//! columns are type-inferred (integer → float → boolean → text).

use crate::error::{PdbError, Result};
use crate::schema::{Column, Schema};
use crate::table::PTable;
use crate::value::{DataType, Value};

/// Options controlling CSV import.
#[derive(Debug, Clone)]
pub struct CsvOptions {
    /// Name of the column holding membership probabilities.
    pub probability_column: String,
    /// Name of the column holding x-tuple group keys, if any.
    pub group_column: Option<String>,
}

impl Default for CsvOptions {
    fn default() -> Self {
        CsvOptions {
            probability_column: "probability".to_string(),
            group_column: Some("group_key".to_string()),
        }
    }
}

/// Splits one CSV record, honouring double-quoted fields with embedded commas
/// and doubled quotes.
fn split_record(line: &str, line_no: usize) -> Result<Vec<String>> {
    let mut fields = Vec::new();
    let mut field = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        match c {
            '"' if in_quotes => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    field.push('"');
                } else {
                    in_quotes = false;
                }
            }
            '"' if field.is_empty() => in_quotes = true,
            '"' => {
                return Err(PdbError::CsvError {
                    line: line_no,
                    message: "unexpected quote in unquoted field".into(),
                })
            }
            ',' if !in_quotes => {
                fields.push(std::mem::take(&mut field));
            }
            c => field.push(c),
        }
    }
    if in_quotes {
        return Err(PdbError::CsvError {
            line: line_no,
            message: "unterminated quoted field".into(),
        });
    }
    fields.push(field);
    Ok(fields)
}

/// Parses CSV text into a probabilistic table.
///
/// # Errors
///
/// Returns [`PdbError::CsvError`] for malformed input (missing header,
/// missing probability column, ragged rows, unparsable probabilities) and
/// propagates schema/probability validation errors from [`PTable::insert`].
pub fn table_from_csv(name: &str, text: &str, options: &CsvOptions) -> Result<PTable> {
    let mut lines = text
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty());
    let (_, header_line) = lines.next().ok_or(PdbError::CsvError {
        line: 1,
        message: "missing header row".into(),
    })?;
    let header = split_record(header_line, 1)?;
    let prob_idx = header
        .iter()
        .position(|h| h.trim() == options.probability_column)
        .ok_or_else(|| PdbError::CsvError {
            line: 1,
            message: format!(
                "probability column `{}` not found in header",
                options.probability_column
            ),
        })?;
    let group_idx = match &options.group_column {
        Some(name) => header.iter().position(|h| h.trim() == *name),
        None => None,
    };

    // Collect records first so column types can be inferred over the whole
    // file.
    let mut records = Vec::new();
    for (i, line) in lines {
        let record = split_record(line, i + 1)?;
        if record.len() != header.len() {
            return Err(PdbError::CsvError {
                line: i + 1,
                message: format!("expected {} fields, got {}", header.len(), record.len()),
            });
        }
        records.push((i + 1, record));
    }

    let data_columns: Vec<usize> = (0..header.len())
        .filter(|&i| i != prob_idx && Some(i) != group_idx)
        .collect();
    let mut columns = Vec::new();
    for &col in &data_columns {
        let mut ty = DataType::Integer;
        for (_, record) in &records {
            match Value::infer_from_str(&record[col]) {
                Value::Integer(_) | Value::Null => {}
                Value::Float(_) => {
                    if ty == DataType::Integer {
                        ty = DataType::Float;
                    }
                }
                Value::Boolean(_) => {
                    if ty == DataType::Integer {
                        ty = DataType::Boolean;
                    } else if ty != DataType::Boolean {
                        ty = DataType::Text;
                    }
                }
                Value::Text(_) => ty = DataType::Text,
            }
        }
        columns.push(Column::new(header[col].trim(), ty));
    }
    let schema = Schema::new(columns)?;
    let mut table = PTable::new(name, schema);
    for (line_no, record) in records {
        let probability: f64 =
            record[prob_idx]
                .trim()
                .parse()
                .map_err(|_| PdbError::CsvError {
                    line: line_no,
                    message: format!("invalid probability `{}`", record[prob_idx]),
                })?;
        let group = group_idx.and_then(|g| {
            let key = record[g].trim();
            (!key.is_empty()).then(|| key.to_string())
        });
        let values: Vec<Value> = data_columns
            .iter()
            .map(|&c| Value::infer_from_str(&record[c]))
            .collect();
        table.insert(values, probability, group.as_deref())?;
    }
    Ok(table)
}

/// Serialises a probabilistic table back to CSV (probability and group
/// columns appended after the data columns).
pub fn table_to_csv(table: &PTable, options: &CsvOptions) -> String {
    let mut out = String::new();
    let mut header: Vec<String> = table
        .schema()
        .columns()
        .iter()
        .map(|c| c.name.clone())
        .collect();
    header.push(options.probability_column.clone());
    if let Some(g) = &options.group_column {
        header.push(g.clone());
    }
    out.push_str(&header.join(","));
    out.push('\n');
    for row in table.rows() {
        let mut fields: Vec<String> = row.values.iter().map(escape_field).collect();
        fields.push(format!("{}", row.probability));
        if options.group_column.is_some() {
            fields.push(row.group.clone().unwrap_or_default());
        }
        out.push_str(&fields.join(","));
        out.push('\n');
    }
    out
}

fn escape_field(value: &Value) -> String {
    let s = value.to_string();
    if s.contains(',') || s.contains('"') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
segment_id,speed_limit,length,delay,probability,group_key
1,50,1000,120,0.6,seg-1
1,50,1000,300,0.4,seg-1
2,30,500,90,1.0,seg-2
3,60,\"1,200\",100,0.5,
";

    #[test]
    fn imports_a_table_with_groups_and_quotes() {
        let t = table_from_csv("area", SAMPLE, &CsvOptions::default()).unwrap();
        assert_eq!(t.len(), 4);
        assert_eq!(t.schema().len(), 4);
        assert_eq!(t.rows()[0].group.as_deref(), Some("seg-1"));
        assert_eq!(t.rows()[3].group, None);
        // The quoted "1,200" stays one field and becomes text (not numeric).
        assert_eq!(t.rows()[3].values[2], Value::Text("1,200".into()));
        // speed_limit is inferred as integer, delay as integer, probability
        // column is stripped from the schema.
        assert!(t.schema().index_of("probability").is_err());
    }

    #[test]
    fn round_trips_through_export_and_import() {
        let t = table_from_csv("area", SAMPLE, &CsvOptions::default()).unwrap();
        let text = table_to_csv(&t, &CsvOptions::default());
        let t2 = table_from_csv("area", &text, &CsvOptions::default()).unwrap();
        assert_eq!(t.len(), t2.len());
        for (a, b) in t.rows().iter().zip(t2.rows()) {
            assert_eq!(a.probability, b.probability);
            assert_eq!(a.group, b.group);
        }
    }

    #[test]
    fn reports_malformed_input() {
        assert!(matches!(
            table_from_csv("x", "", &CsvOptions::default()),
            Err(PdbError::CsvError { .. })
        ));
        let missing_prob = "a,b\n1,2\n";
        assert!(matches!(
            table_from_csv("x", missing_prob, &CsvOptions::default()),
            Err(PdbError::CsvError { line: 1, .. })
        ));
        let ragged = "a,probability\n1,0.5\n2\n";
        assert!(matches!(
            table_from_csv("x", ragged, &CsvOptions::default()),
            Err(PdbError::CsvError { line: 3, .. })
        ));
        let bad_prob = "a,probability\n1,huh\n";
        assert!(matches!(
            table_from_csv("x", bad_prob, &CsvOptions::default()),
            Err(PdbError::CsvError { line: 2, .. })
        ));
        let unterminated = "a,probability\n\"oops,0.5\n";
        assert!(matches!(
            table_from_csv("x", unterminated, &CsvOptions::default()),
            Err(PdbError::CsvError { .. })
        ));
    }

    #[test]
    fn group_column_is_optional() {
        let options = CsvOptions {
            probability_column: "p".into(),
            group_column: None,
        };
        let csv = "score,p\n10,0.5\n20,0.25\n";
        let t = table_from_csv("simple", csv, &options).unwrap();
        assert_eq!(t.len(), 2);
        assert!(t.rows().iter().all(|r| r.group.is_none()));
    }
}
