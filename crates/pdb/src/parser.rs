//! A recursive-descent parser for scoring expressions.
//!
//! Grammar (usual precedence, left associative):
//!
//! ```text
//! expr    := term (('+' | '-') term)*
//! term    := factor (('*' | '/') factor)*
//! factor  := '-' factor | '(' expr ')' | NUMBER | IDENTIFIER
//! ```
//!
//! Identifiers are column names (letters, digits and underscores, starting
//! with a letter or underscore); numbers are decimal literals with an
//! optional fraction and exponent.

use crate::error::{PdbError, Result};
use crate::expr::{BinaryOp, Expr};

/// Parses a scoring expression such as `speed_limit / (length / delay)`.
pub fn parse_expression(input: &str) -> Result<Expr> {
    let mut parser = Parser {
        input: input.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let expr = parser.expr()?;
    parser.skip_whitespace();
    if parser.pos != parser.input.len() {
        return Err(parser.error("unexpected trailing input"));
    }
    Ok(expr)
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> PdbError {
        PdbError::ParseError {
            position: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expr(&mut self) -> Result<Expr> {
        let mut lhs = self.term()?;
        loop {
            self.skip_whitespace();
            match self.peek() {
                Some(b'+') => {
                    self.bump();
                    lhs = lhs.binary(BinaryOp::Add, self.term()?);
                }
                Some(b'-') => {
                    self.bump();
                    lhs = lhs.binary(BinaryOp::Sub, self.term()?);
                }
                _ => return Ok(lhs),
            }
        }
    }

    fn term(&mut self) -> Result<Expr> {
        let mut lhs = self.factor()?;
        loop {
            self.skip_whitespace();
            match self.peek() {
                Some(b'*') => {
                    self.bump();
                    lhs = lhs.binary(BinaryOp::Mul, self.factor()?);
                }
                Some(b'/') => {
                    self.bump();
                    lhs = lhs.binary(BinaryOp::Div, self.factor()?);
                }
                _ => return Ok(lhs),
            }
        }
    }

    fn factor(&mut self) -> Result<Expr> {
        self.skip_whitespace();
        match self.peek() {
            Some(b'-') => {
                self.bump();
                Ok(Expr::Negate(Box::new(self.factor()?)))
            }
            Some(b'(') => {
                self.bump();
                let inner = self.expr()?;
                self.skip_whitespace();
                if self.bump() != Some(b')') {
                    return Err(self.error("expected `)`"));
                }
                Ok(inner)
            }
            Some(c) if c.is_ascii_digit() || c == b'.' => self.number(),
            Some(c) if c.is_ascii_alphabetic() || c == b'_' => self.identifier(),
            Some(_) => Err(self.error("expected a number, column name, `-` or `(`")),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn number(&mut self) -> Result<Expr> {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || c == b'.') {
            self.pos += 1;
        }
        // Optional exponent.
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.input[start..self.pos]).expect("ASCII slice is valid UTF-8");
        text.parse::<f64>()
            .map(Expr::Literal)
            .map_err(|_| PdbError::ParseError {
                position: start,
                message: format!("invalid numeric literal `{text}`"),
            })
    }

    fn identifier(&mut self) -> Result<Expr> {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_alphanumeric() || c == b'_') {
            self.pos += 1;
        }
        let text =
            std::str::from_utf8(&self.input[start..self.pos]).expect("ASCII slice is valid UTF-8");
        Ok(Expr::Column(text.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::value::{DataType, Value};

    #[test]
    fn parses_the_paper_query_expression() {
        let e = parse_expression("speed_limit / (length / delay)").unwrap();
        assert_eq!(e.to_string(), "(speed_limit / (length / delay))");
    }

    #[test]
    fn precedence_and_associativity() {
        let s = Schema::default().with("x", DataType::Float);
        let v = vec![Value::Float(10.0)];
        let cases = [
            ("1 + 2 * 3", 7.0),
            ("(1 + 2) * 3", 9.0),
            ("10 - 2 - 3", 5.0),
            ("100 / 10 / 2", 5.0),
            ("-x + 12", 2.0),
            ("2 * -3", -6.0),
            ("x * 1.5e1", 150.0),
            (".5 * x", 5.0),
        ];
        for (text, expected) in cases {
            let e = parse_expression(text).unwrap();
            let got = e.evaluate(&s, &v).unwrap();
            assert!(
                (got - expected).abs() < 1e-12,
                "{text}: {got} vs {expected}"
            );
        }
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "1 +", "(1 + 2", "1 ** 2", "foo $ bar", "1 2"] {
            assert!(
                matches!(parse_expression(bad), Err(PdbError::ParseError { .. })),
                "{bad} should fail"
            );
        }
    }

    #[test]
    fn identifiers_allow_underscores_and_digits() {
        let e = parse_expression("speed_limit_2 * 2").unwrap();
        assert_eq!(e.referenced_columns(), vec!["speed_limit_2"]);
    }
}
