//! Scoring expressions: a small arithmetic language over row attributes.
//!
//! The paper's example query ranks road segments by
//! `speed_limit / (length / delay)`. This module provides the abstract
//! syntax tree and evaluator for such expressions; [`crate::parser`] turns
//! SQL-ish text into an [`Expr`].

use crate::error::{PdbError, Result};
use crate::schema::Schema;
use crate::value::Value;

/// Binary arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
}

impl BinaryOp {
    fn apply(self, lhs: f64, rhs: f64) -> Result<f64> {
        match self {
            BinaryOp::Add => Ok(lhs + rhs),
            BinaryOp::Sub => Ok(lhs - rhs),
            BinaryOp::Mul => Ok(lhs * rhs),
            BinaryOp::Div => {
                if rhs.abs() < 1e-300 {
                    Err(PdbError::DivisionByZero)
                } else {
                    Ok(lhs / rhs)
                }
            }
        }
    }
}

/// A scoring expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A reference to a column of the row being scored.
    Column(String),
    /// A numeric literal.
    Literal(f64),
    /// A binary arithmetic operation.
    Binary {
        /// The operator.
        op: BinaryOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Unary negation.
    Negate(Box<Expr>),
}

impl Expr {
    /// A column reference.
    pub fn column(name: impl Into<String>) -> Expr {
        Expr::Column(name.into())
    }

    /// A numeric literal.
    pub fn literal(v: f64) -> Expr {
        Expr::Literal(v)
    }

    /// `self op other`.
    pub fn binary(self, op: BinaryOp, other: Expr) -> Expr {
        Expr::Binary {
            op,
            lhs: Box::new(self),
            rhs: Box::new(other),
        }
    }

    /// Collects the column names referenced by the expression.
    pub fn referenced_columns(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out
    }

    fn collect_columns<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Expr::Column(name) => {
                if !out.contains(&name.as_str()) {
                    out.push(name);
                }
            }
            Expr::Literal(_) => {}
            Expr::Binary { lhs, rhs, .. } => {
                lhs.collect_columns(out);
                rhs.collect_columns(out);
            }
            Expr::Negate(inner) => inner.collect_columns(out),
        }
    }

    /// Checks that every referenced column exists in the schema.
    pub fn validate(&self, schema: &Schema) -> Result<()> {
        for name in self.referenced_columns() {
            schema.index_of(name)?;
        }
        Ok(())
    }

    /// Evaluates the expression against one row of values laid out according
    /// to `schema`.
    ///
    /// # Errors
    ///
    /// Returns [`PdbError::UnknownColumn`], [`PdbError::TypeMismatch`] (for
    /// non-numeric operands, including NULL) or [`PdbError::DivisionByZero`].
    pub fn evaluate(&self, schema: &Schema, values: &[Value]) -> Result<f64> {
        match self {
            Expr::Column(name) => {
                let idx = schema.index_of(name)?;
                values
                    .get(idx)
                    .ok_or_else(|| PdbError::SchemaMismatch(format!("row too short for `{name}`")))?
                    .as_number(&format!("column `{name}`"))
            }
            Expr::Literal(v) => Ok(*v),
            Expr::Binary { op, lhs, rhs } => {
                let l = lhs.evaluate(schema, values)?;
                let r = rhs.evaluate(schema, values)?;
                op.apply(l, r)
            }
            Expr::Negate(inner) => Ok(-inner.evaluate(schema, values)?),
        }
    }
}

impl std::fmt::Display for Expr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Expr::Column(name) => write!(f, "{name}"),
            Expr::Literal(v) => write!(f, "{v}"),
            Expr::Binary { op, lhs, rhs } => {
                let symbol = match op {
                    BinaryOp::Add => "+",
                    BinaryOp::Sub => "-",
                    BinaryOp::Mul => "*",
                    BinaryOp::Div => "/",
                };
                write!(f, "({lhs} {symbol} {rhs})")
            }
            Expr::Negate(inner) => write!(f, "(-{inner})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::DataType;

    fn schema() -> Schema {
        Schema::default()
            .with("speed_limit", DataType::Float)
            .with("length", DataType::Float)
            .with("delay", DataType::Float)
    }

    fn congestion() -> Expr {
        // speed_limit / (length / delay)
        Expr::column("speed_limit").binary(
            BinaryOp::Div,
            Expr::column("length").binary(BinaryOp::Div, Expr::column("delay")),
        )
    }

    #[test]
    fn evaluates_the_congestion_score() {
        let values = vec![
            Value::Float(50.0),
            Value::Float(1000.0),
            Value::Float(200.0),
        ];
        let score = congestion().evaluate(&schema(), &values).unwrap();
        assert!((score - 50.0 / (1000.0 / 200.0)).abs() < 1e-12);
    }

    #[test]
    fn arithmetic_and_negation() {
        let s = Schema::default().with("x", DataType::Float);
        let values = vec![Value::Float(4.0)];
        let e = Expr::literal(2.0)
            .binary(BinaryOp::Mul, Expr::column("x"))
            .binary(BinaryOp::Add, Expr::literal(1.0));
        assert_eq!(e.evaluate(&s, &values).unwrap(), 9.0);
        let n = Expr::Negate(Box::new(Expr::column("x")));
        assert_eq!(n.evaluate(&s, &values).unwrap(), -4.0);
        let d = Expr::column("x").binary(BinaryOp::Sub, Expr::literal(1.5));
        assert_eq!(d.evaluate(&s, &values).unwrap(), 2.5);
    }

    #[test]
    fn division_by_zero_and_type_errors() {
        let s = Schema::default()
            .with("x", DataType::Float)
            .with("label", DataType::Text);
        let values = vec![Value::Float(1.0), Value::from("road")];
        let div = Expr::column("x").binary(BinaryOp::Div, Expr::literal(0.0));
        assert!(matches!(
            div.evaluate(&s, &values),
            Err(PdbError::DivisionByZero)
        ));
        let text = Expr::column("label").binary(BinaryOp::Add, Expr::literal(1.0));
        assert!(matches!(
            text.evaluate(&s, &values),
            Err(PdbError::TypeMismatch { .. })
        ));
        let missing = Expr::column("nope");
        assert!(matches!(
            missing.evaluate(&s, &values),
            Err(PdbError::UnknownColumn(_))
        ));
    }

    #[test]
    fn referenced_columns_and_validation() {
        let e = congestion();
        let mut cols = e.referenced_columns();
        cols.sort_unstable();
        assert_eq!(cols, vec!["delay", "length", "speed_limit"]);
        assert!(e.validate(&schema()).is_ok());
        let bad = Expr::column("missing");
        assert!(bad.validate(&schema()).is_err());
    }

    #[test]
    fn display_round_trips_visually() {
        assert_eq!(congestion().to_string(), "(speed_limit / (length / delay))");
    }
}
