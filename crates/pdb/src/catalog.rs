//! A trivial catalog of named probabilistic tables.

use std::collections::BTreeMap;

use crate::error::{PdbError, Result};
use crate::table::PTable;

/// An in-memory database: a set of named probabilistic tables.
#[derive(Debug, Default, Clone)]
pub struct Database {
    tables: BTreeMap<String, PTable>,
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a table under its own name.
    ///
    /// # Errors
    ///
    /// Returns [`PdbError::DuplicateTable`] when a table with the same name
    /// already exists.
    pub fn create_table(&mut self, table: PTable) -> Result<()> {
        if self.tables.contains_key(table.name()) {
            return Err(PdbError::DuplicateTable(table.name().to_string()));
        }
        self.tables.insert(table.name().to_string(), table);
        Ok(())
    }

    /// Looks a table up by name.
    ///
    /// # Errors
    ///
    /// Returns [`PdbError::UnknownTable`] when it does not exist.
    pub fn table(&self, name: &str) -> Result<&PTable> {
        self.tables
            .get(name)
            .ok_or_else(|| PdbError::UnknownTable(name.to_string()))
    }

    /// Mutable table lookup.
    ///
    /// # Errors
    ///
    /// Returns [`PdbError::UnknownTable`] when it does not exist.
    pub fn table_mut(&mut self, name: &str) -> Result<&mut PTable> {
        self.tables
            .get_mut(name)
            .ok_or_else(|| PdbError::UnknownTable(name.to_string()))
    }

    /// Removes a table, returning it.
    ///
    /// # Errors
    ///
    /// Returns [`PdbError::UnknownTable`] when it does not exist.
    pub fn drop_table(&mut self, name: &str) -> Result<PTable> {
        self.tables
            .remove(name)
            .ok_or_else(|| PdbError::UnknownTable(name.to_string()))
    }

    /// The table names in lexicographic order.
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(String::as_str).collect()
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// True when the database holds no tables.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::value::DataType;

    fn sample_table(name: &str) -> PTable {
        PTable::new(name, Schema::default().with("x", DataType::Float))
    }

    #[test]
    fn create_lookup_and_drop() {
        let mut db = Database::new();
        assert!(db.is_empty());
        db.create_table(sample_table("area")).unwrap();
        db.create_table(sample_table("sensors")).unwrap();
        assert_eq!(db.len(), 2);
        assert_eq!(db.table_names(), vec!["area", "sensors"]);
        assert!(db.table("area").is_ok());
        assert!(matches!(db.table("nope"), Err(PdbError::UnknownTable(_))));
        assert!(matches!(
            db.create_table(sample_table("area")),
            Err(PdbError::DuplicateTable(_))
        ));
        db.table_mut("area")
            .unwrap()
            .insert(vec![1.0.into()], 0.5, None)
            .unwrap();
        assert_eq!(db.table("area").unwrap().len(), 1);
        let dropped = db.drop_table("area").unwrap();
        assert_eq!(dropped.name(), "area");
        assert!(db.drop_table("area").is_err());
        assert_eq!(db.len(), 1);
    }
}
