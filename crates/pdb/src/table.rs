//! Probabilistic tables: relational rows with membership probabilities and
//! x-tuple (mutual exclusion) groups.

use std::collections::HashMap;

use ttk_uncertain::{SourceTuple, TupleId, UncertainTable, UncertainTuple, VecSource};

use crate::error::{PdbError, Result};
use crate::expr::Expr;
use crate::schema::Schema;
use crate::value::Value;

/// One uncertain row: the attribute values, the membership probability, and
/// an optional x-tuple group key. Rows that share a group key are mutually
/// exclusive (at most one of them exists), mirroring how, for example, the
/// binned delay measurements of one road segment relate to each other.
#[derive(Debug, Clone, PartialEq)]
pub struct UncertainRow {
    /// Attribute values, laid out according to the table schema.
    pub values: Vec<Value>,
    /// Membership probability in `(0, 1]`.
    pub probability: f64,
    /// Optional x-tuple group key.
    pub group: Option<String>,
}

/// An in-memory probabilistic table.
#[derive(Debug, Clone)]
pub struct PTable {
    name: String,
    schema: Schema,
    rows: Vec<UncertainRow>,
}

impl PTable {
    /// Creates an empty table.
    pub fn new(name: impl Into<String>, schema: Schema) -> Self {
        PTable {
            name: name.into(),
            schema,
            rows: Vec::new(),
        }
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Table schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The rows in insertion order.
    pub fn rows(&self) -> &[UncertainRow] {
        &self.rows
    }

    /// One row by index.
    pub fn row(&self, index: usize) -> Option<&UncertainRow> {
        self.rows.get(index)
    }

    /// Inserts a row, validating it against the schema and the probability
    /// range. Returns the row index.
    ///
    /// # Errors
    ///
    /// Returns schema/type errors from [`Schema::check_row`] and
    /// [`PdbError::InvalidQuery`] for out-of-range probabilities.
    pub fn insert(
        &mut self,
        values: Vec<Value>,
        probability: f64,
        group: Option<&str>,
    ) -> Result<usize> {
        let values = self.schema.check_row(&values)?;
        if !(probability > 0.0 && probability <= 1.0 + 1e-9) {
            return Err(PdbError::InvalidQuery(format!(
                "membership probability must be in (0, 1], got {probability}"
            )));
        }
        self.rows.push(UncertainRow {
            values,
            probability: probability.min(1.0),
            group: group.map(str::to_string),
        });
        Ok(self.rows.len() - 1)
    }

    /// Total probability mass per x-tuple group (useful for sanity checks).
    pub fn group_masses(&self) -> HashMap<String, f64> {
        let mut masses = HashMap::new();
        for row in &self.rows {
            if let Some(g) = &row.group {
                *masses.entry(g.clone()).or_insert(0.0) += row.probability;
            }
        }
        masses
    }

    /// Scores every row with the given expression and builds the
    /// [`UncertainTable`] the top-k algorithms operate on. Tuple ids are row
    /// indices, so results map straight back to rows.
    ///
    /// # Errors
    ///
    /// Returns expression evaluation errors and data-model validation errors
    /// (for example a group whose probabilities sum to more than one).
    pub fn to_uncertain_table(&self, score: &Expr) -> Result<UncertainTable> {
        if self.rows.is_empty() {
            return Err(PdbError::InvalidQuery(format!(
                "table `{}` is empty",
                self.name
            )));
        }
        score.validate(&self.schema)?;
        let mut tuples = Vec::with_capacity(self.rows.len());
        let mut groups: HashMap<&str, Vec<TupleId>> = HashMap::new();
        for (idx, row) in self.rows.iter().enumerate() {
            let score_value = score.evaluate(&self.schema, &row.values)?;
            let id = TupleId(idx as u64);
            tuples.push(
                UncertainTuple::new(id, score_value, row.probability).map_err(PdbError::Core)?,
            );
            if let Some(g) = &row.group {
                groups.entry(g.as_str()).or_default().push(id);
            }
        }
        let rules: Vec<Vec<TupleId>> = groups
            .into_values()
            .filter(|members| members.len() > 1)
            .collect();
        UncertainTable::new(tuples, rules).map_err(PdbError::Core)
    }

    /// Scores every row and returns a rank-ordered
    /// [`TupleSource`](ttk_uncertain::TupleSource) over the result — the
    /// streaming entry point of the probabilistic-database layer. Only the
    /// `(row index, score, probability, group)` quadruples are retained;
    /// downstream consumers stop at the Theorem-2 bound without ever
    /// materializing an [`UncertainTable`] of the whole relation.
    ///
    /// # Errors
    ///
    /// Returns expression validation/evaluation errors and tuple validation
    /// errors (non-finite scores, out-of-range probabilities).
    pub fn to_tuple_source(&self, score: &Expr) -> Result<VecSource> {
        if self.rows.is_empty() {
            return Err(PdbError::InvalidQuery(format!(
                "table `{}` is empty",
                self.name
            )));
        }
        score.validate(&self.schema)?;
        let mut key_of_group: HashMap<&str, u64> = HashMap::new();
        let mut tuples = Vec::with_capacity(self.rows.len());
        for (idx, row) in self.rows.iter().enumerate() {
            let score_value = score.evaluate(&self.schema, &row.values)?;
            let tuple = UncertainTuple::new(idx as u64, score_value, row.probability)
                .map_err(PdbError::Core)?;
            tuples.push(match &row.group {
                Some(g) => {
                    let next_key = key_of_group.len() as u64;
                    let key = *key_of_group.entry(g.as_str()).or_insert(next_key);
                    SourceTuple::grouped(tuple, key)
                }
                None => SourceTuple::independent(tuple),
            });
        }
        Ok(VecSource::new(tuples))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_expression;
    use crate::value::DataType;

    fn road_table() -> PTable {
        let schema = Schema::default()
            .with("segment_id", DataType::Integer)
            .with("speed_limit", DataType::Float)
            .with("length", DataType::Float)
            .with("delay", DataType::Float);
        let mut t = PTable::new("area", schema);
        // Segment 1 has two mutually exclusive delay estimates.
        t.insert(
            vec![1.into(), 50.0.into(), 1000.0.into(), 120.0.into()],
            0.6,
            Some("seg-1"),
        )
        .unwrap();
        t.insert(
            vec![1.into(), 50.0.into(), 1000.0.into(), 300.0.into()],
            0.4,
            Some("seg-1"),
        )
        .unwrap();
        // Segment 2 has a single certain measurement.
        t.insert(
            vec![2.into(), 30.0.into(), 500.0.into(), 90.0.into()],
            1.0,
            Some("seg-2"),
        )
        .unwrap();
        t
    }

    #[test]
    fn insert_validates_probability_and_schema() {
        let mut t = road_table();
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        assert!(t
            .insert(
                vec![3.into(), 1.0.into(), 1.0.into(), 1.0.into()],
                0.0,
                None
            )
            .is_err());
        assert!(t.insert(vec![3.into(), 1.0.into()], 0.5, None).is_err());
        assert_eq!(t.row(0).unwrap().probability, 0.6);
        assert!(t.row(99).is_none());
        assert_eq!(t.name(), "area");
        assert_eq!(t.schema().len(), 4);
    }

    #[test]
    fn group_masses_aggregate_per_key() {
        let t = road_table();
        let masses = t.group_masses();
        assert!((masses["seg-1"] - 1.0).abs() < 1e-12);
        assert!((masses["seg-2"] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn converts_to_an_uncertain_table_with_me_rules() {
        let t = road_table();
        let expr = parse_expression("speed_limit / (length / delay)").unwrap();
        let ut = t.to_uncertain_table(&expr).unwrap();
        assert_eq!(ut.len(), 3);
        // The two rows of segment 1 are mutually exclusive.
        let p0 = ut.position(0u64).unwrap();
        let p1 = ut.position(1u64).unwrap();
        assert_eq!(ut.group_index(p0), ut.group_index(p1));
        let p2 = ut.position(2u64).unwrap();
        assert_ne!(ut.group_index(p0), ut.group_index(p2));
        // Scores follow the congestion formula.
        let expected = 50.0 / (1000.0 / 120.0);
        assert!((ut.tuple(p0).score() - expected).abs() < 1e-9);
    }

    #[test]
    fn conversion_errors_are_reported() {
        let t = road_table();
        let missing = parse_expression("not_a_column * 2").unwrap();
        assert!(matches!(
            t.to_uncertain_table(&missing),
            Err(PdbError::UnknownColumn(_))
        ));
        let empty = PTable::new("empty", Schema::default().with("x", DataType::Float));
        let expr = parse_expression("x").unwrap();
        assert!(matches!(
            empty.to_uncertain_table(&expr),
            Err(PdbError::InvalidQuery(_))
        ));
    }

    #[test]
    fn overweight_groups_are_rejected_at_conversion() {
        let schema = Schema::default().with("x", DataType::Float);
        let mut t = PTable::new("bad", schema);
        t.insert(vec![1.0.into()], 0.7, Some("g")).unwrap();
        t.insert(vec![2.0.into()], 0.6, Some("g")).unwrap();
        let expr = parse_expression("x").unwrap();
        assert!(matches!(
            t.to_uncertain_table(&expr),
            Err(PdbError::Core(_))
        ));
    }
}
